"""MiniC sources for the paper's examples and the WCET benchmark set.

The paper evaluates on real programs (Mälardalen / MiBench /
mediaBench).  Those sources cannot be shipped or compiled here, so each
benchmark is replaced by a synthetic MiniC kernel that preserves the
*cache-relevant structure* of the original: roughly how much state it
streams through the cache, how many data-dependent branches it has, which
tables the two sides of each branch touch, and which previously loaded
data is re-used afterwards.  The absolute miss counts therefore differ
from the paper, but the comparisons the paper makes (speculative vs
non-speculative, merge strategies, depth bounding) exercise the same code
paths and show the same shape.

All WCET kernels are parameterised by the number of cache lines of the
evaluation cache so the suite can be scaled; the structural constants
below are chosen for the default 64-line bench cache (4 KB), keeping the
pure-Python analysis fast while preserving the "working set roughly fills
the cache" property that makes speculation observable.
"""

from __future__ import annotations

from collections.abc import Callable

# ----------------------------------------------------------------------
# Paper examples
# ----------------------------------------------------------------------


def motivating_example_source(num_lines: int = 512, line_size: int = 64) -> str:
    """The Figure 2 program, parametric in the cache geometry.

    ``ph`` occupies ``num_lines - 2`` lines, ``l1``/``l2``/``p`` one line
    each and ``k`` lives in a register, so that non-speculatively the
    final ``ph[k]`` access is a guaranteed hit while a single mispredicted
    excursion evicts the first ``ph`` line.
    """
    ph_lines = num_lines - 2
    ph_bytes = ph_lines * line_size
    return f"""
// Figure 2: timing side channel enabled by speculative execution.
char ph[{ph_bytes}];
char l1[{line_size}];
char l2[{line_size}];
char p;
secret reg char k;

int main() {{
  reg int i;
  for (i = 0; i < {ph_bytes}; i += {line_size}) {{
    ph[i];                       // line 3: preload the placeholder array
  }}
  if (p == 0) {{                 // line 4: branch on an uncached variable
    l1[0];                       // line 5
  }} else {{
    l2[0];                       // line 7
  }}
  ph[k];                         // line 8: secret-indexed access
  return 0;
}}
"""


def quantl_client_source() -> str:
    """The Figure 8 DSP kernel (quantl) wrapped by a small driver.

    This is the paper's running example for the fixed-point computation
    (Tables 1 and 2, Figure 9): the search loop over ``decis_levl`` is
    *not* unrolled (it contains a ``break``), and the final ``if``/``else``
    selects between the positive and negative quantisation tables, which
    is exactly where speculation touches both tables in one execution.
    """
    return """
// Figure 8: code snippet from a real-time DSP program (adpcm/quantl).
int quant26bt_pos[31] = { 61,60,59,58,57,56,55,54,53,52,51,50,49,48,47,46,
                          45,44,43,42,41,40,39,38,37,36,35,34,33,32,32 };
int quant26bt_neg[31] = { 63,62,31,30,29,28,27,26,25,24,23,22,21,20,19,18,
                          17,16,15,14,13,12,11,10,9,8,7,6,5,4,4 };
int decis_levl[30] = { 280,576,880,1200,1520,1864,2208,2584,2960,3376,3784,
                       4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,
                       10712,11664,12896,14120,15840,17560,20456,23352,32767 };

int quantl(int el, int detl) {
  int ril;
  int mil;
  long wd;
  long decis;
  wd = my_abs(el);
  for (mil = 0; mil < 30; mil = mil + 1) {
    decis = (decis_levl[mil] * detl) >> 15;
    if (wd <= decis) break;
  }
  if (el >= 0) ril = quant26bt_pos[mil];
  else ril = quant26bt_neg[mil];
  return ril;
}

int main() {
  int el;
  int detl;
  int out;
  out = quantl(el, detl);
  return out;
}
"""


def figure7_source() -> str:
    """The Figure 7 diamond used to illustrate Just-in-Time merging.

    Block 1 loads ``a``, ``b`` and ``c``; the branch loads ``d`` on one
    side and ``e`` on the other; block 4 re-loads ``a``.  With a 4-line
    cache, the non-speculative analysis keeps ``a``, ``b``, ``c`` cached at
    block 4, whereas a sound speculative analysis must account for both
    ``d`` and ``e`` being loaded, which evicts ``a``.
    """
    return """
// Figure 7: merge-strategy example (analyse with a 4-line cache).
char a[64]; char b[64]; char c[64]; char d[64]; char e[64];
reg int p;

int main() {
  a[0]; b[0]; c[0];        // basic block 1
  if (p > 0) {
    d[0];                  // basic block 2
  } else {
    e[0];                  // basic block 3
  }
  a[0];                    // basic block 4
  return 0;
}
"""


def figure11_source(iterations: int = 3) -> str:
    """The Figure 11 loop used to motivate the shadow-variable refinement.

    ``a`` is loaded before the loop; each iteration branches and loads
    either ``b`` or ``c``.  Without shadow variables the join at the loop
    head keeps aging ``a`` until it is (spuriously) evicted from the
    abstract cache; with them, ``a`` stays a must hit.
    """
    return f"""
// Figure 11 / Figure 13: precision loss at loop joins (4-line cache).
char a[64]; char b[64]; char c[64];
int n;

int main() {{
  reg int i;
  a[0];
  for (i = 0; i < {iterations}; i = i + 1) {{
    if (n > i) {{
      b[0];
    }} else {{
      c[0];
    }}
  }}
  a[0];
  return 0;
}}
"""


# ----------------------------------------------------------------------
# Table 3: execution-time-estimation benchmark set
# ----------------------------------------------------------------------
#
# Every generator receives the number of cache lines of the evaluation
# cache and the line size; arrays are sized as a fraction of the cache so
# the structural properties (fits / barely fits / overflows under
# speculation) are preserved at any scale.


def _lines(fraction: float, num_lines: int, minimum: int = 1) -> int:
    return max(minimum, int(num_lines * fraction))


def adpcm_source(num_lines: int = 64, line_size: int = 64) -> str:
    """ADPCM motor control: quantl-style decision loop plus a state buffer
    that nearly fills the cache and is re-used after the branch."""
    state_lines = _lines(0.82, num_lines)
    state_bytes = state_lines * line_size
    reuse = min(8, state_lines)
    reuse_stmts = "\n  ".join(f"state[{i * line_size}];" for i in range(reuse))
    return f"""
// adpcm (WCET@mdh): motor-control quantiser.
char state[{state_bytes}];
int quant_pos[31] = {{ 61,60,59,58,57,56,55,54,53,52,51,50,49,48,47,46,
                      45,44,43,42,41,40,39,38,37,36,35,34,33,32,32 }};
int quant_neg[31] = {{ 63,62,31,30,29,28,27,26,25,24,23,22,21,20,19,18,
                      17,16,15,14,13,12,11,10,9,8,7,6,5,4,4 }};
int decis_levl[30] = {{ 280,576,880,1200,1520,1864,2208,2584,2960,3376,3784,
                       4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,
                       10712,11664,12896,14120,15840,17560,20456,23352,32767 }};
int el; int detl; int ril;

int main() {{
  reg int i;
  int mil;
  long wd;
  long decis;
  for (i = 0; i < {state_bytes}; i += {line_size}) {{
    state[i];                                 // warm the sample buffer
  }}
  wd = my_abs(el);
  for (mil = 0; mil < 30; mil = mil + 1) {{
    decis = (decis_levl[mil] * detl) >> 15;
    if (wd <= decis) break;
  }}
  if (el >= 0) ril = quant_pos[mil];
  else ril = quant_neg[mil];
  {reuse_stmts}
  return ril;
}}
"""


def susan_source(num_lines: int = 64, line_size: int = 64) -> str:
    """SUSAN image processing: brightness LUT plus an image strip; the
    corner/edge decision selects between two response tables."""
    image_lines = _lines(0.86, num_lines)
    image_bytes = image_lines * line_size
    lut_bytes = 4 * line_size
    return f"""
// susan (MiBench): smallest-univalue-segment corner detector.
char image[{image_bytes}];
char brightness_lut[{lut_bytes}];
int corner_response[{line_size}];
int edge_response[{line_size}];
int threshold; int total;

int main() {{
  reg int i;
  int acc;
  int centre;
  for (i = 0; i < {lut_bytes}; i += {line_size}) {{
    brightness_lut[i];                        // build the brightness LUT
  }}
  for (i = 0; i < {image_bytes}; i += {line_size}) {{
    image[i];                                 // stream one image strip
  }}
  acc = 0;
  centre = image[0] + threshold;
  if (centre > 40) {{
    acc = corner_response[0] + corner_response[16];
  }} else {{
    acc = edge_response[0] + edge_response[16];
  }}
  total = acc + brightness_lut[0] + brightness_lut[{line_size}];
  image[0]; image[{line_size}]; image[{2 * line_size}]; image[{3 * line_size}];
  return total;
}}
"""


def layer3_source(num_lines: int = 64, line_size: int = 64) -> str:
    """MP3 layer-3 decoding: subband samples plus two window tables chosen
    by the block-type branch, then reuse of the sample buffer."""
    samples_lines = _lines(0.89, num_lines)
    samples_bytes = samples_lines * line_size
    window_bytes = 3 * line_size
    return f"""
// layer3 (MiBench): hybrid synthesis window selection.
int subband[{samples_bytes // 4}];
int window_long[{window_bytes // 4}];
int window_short[{window_bytes // 4}];
int block_type; int energy;

int main() {{
  reg int i;
  int acc;
  for (i = 0; i < {samples_bytes // 4}; i += {line_size // 4}) {{
    subband[i];                               // dequantised samples
  }}
  acc = 0;
  if (block_type == 2) {{
    acc = acc + window_short[0];
    acc = acc + window_short[{line_size // 4}];
    acc = acc + window_short[{2 * (line_size // 4)}];
  }} else {{
    acc = acc + window_long[0];
    acc = acc + window_long[{line_size // 4}];
    acc = acc + window_long[{2 * (line_size // 4)}];
  }}
  if (energy > 100) {{
    acc = acc + subband[0];
  }} else {{
    acc = acc - subband[{line_size // 4}];
  }}
  subband[0]; subband[{line_size // 4}]; subband[{2 * (line_size // 4)}];
  subband[{3 * (line_size // 4)}]; subband[{4 * (line_size // 4)}];
  return acc;
}}
"""


def jcmarker_source(num_lines: int = 64, line_size: int = 64) -> str:
    """JPEG marker writing: quantisation and Huffman tables selected by a
    chain of component branches."""
    qtable_bytes = _lines(0.35, num_lines) * line_size
    htable_bytes = _lines(0.35, num_lines) * line_size
    return f"""
// jcmarker (MiBench cjpeg): emit DQT/DHT markers.
char qtable[{qtable_bytes}];
char htable_dc[{htable_bytes}];
char htable_ac[{htable_bytes}];
int component; int precision; int written;

int main() {{
  reg int i;
  int acc;
  for (i = 0; i < {qtable_bytes}; i += {line_size}) {{
    qtable[i];                                // write the quantisation table
  }}
  acc = 0;
  if (precision > 8) {{
    for (i = 0; i < {htable_bytes}; i += {line_size}) {{
      htable_dc[i];
    }}
    acc = acc + 1;
  }} else {{
    for (i = 0; i < {htable_bytes}; i += {line_size}) {{
      htable_ac[i];
    }}
    acc = acc + 2;
  }}
  if (component == 0) {{
    acc = acc + qtable[0];
  }} else {{
    acc = acc + qtable[{line_size}];
  }}
  qtable[0]; qtable[{line_size}]; qtable[{2 * line_size}];
  written = acc;
  return written;
}}
"""


def jdmarker_source(num_lines: int = 64, line_size: int = 64) -> str:
    """JPEG marker reading: several data-dependent marker branches, each
    touching its own table, with heavy reuse of the header buffer."""
    header_lines = _lines(0.84, num_lines)
    header_bytes = header_lines * line_size
    table_bytes = 4 * line_size
    reuse = min(10, header_lines)
    reuse_stmts = "\n  ".join(f"header[{i * line_size}];" for i in range(reuse))
    return f"""
// jdmarker (MiBench djpeg): parse JFIF markers.
char header[{header_bytes}];
char sof_table[{table_bytes}];
char sos_table[{table_bytes}];
char dqt_table[{table_bytes}];
char dht_table[{table_bytes}];
int marker; int restart;

int main() {{
  reg int i;
  int acc;
  for (i = 0; i < {header_bytes}; i += {line_size}) {{
    header[i];                                // read the header stream
  }}
  acc = 0;
  if (marker == 192) {{
    sof_table[0]; sof_table[{line_size}]; sof_table[{2 * line_size}];
    acc = acc + 1;
  }} else {{
    sos_table[0]; sos_table[{line_size}]; sos_table[{2 * line_size}];
    acc = acc + 2;
  }}
  if (marker == 219) {{
    dqt_table[0]; dqt_table[{line_size}];
  }} else {{
    dht_table[0]; dht_table[{line_size}];
  }}
  if (restart > 0) {{
    acc = acc + header[0];
  }} else {{
    acc = acc - header[{line_size}];
  }}
  {reuse_stmts}
  return acc;
}}
"""


def jcphuff_source(num_lines: int = 64, line_size: int = 64) -> str:
    """Progressive Huffman encoding: a small working set that fits in the
    cache even under speculation — the case where both analyses agree."""
    counts_bytes = 4 * line_size
    return f"""
// jcphuff (MiBench cjpeg): Huffman entropy encoding counters.
int bit_counts[{counts_bytes // 4}];
int code_table[{counts_bytes // 4}];
int symbol; int emitted;

int main() {{
  reg int i;
  int acc;
  for (i = 0; i < {counts_bytes // 4}; i += {line_size // 4}) {{
    bit_counts[i];
  }}
  acc = 0;
  if (symbol > 128) {{
    acc = code_table[0];
  }} else {{
    acc = code_table[{line_size // 4}];
  }}
  bit_counts[0]; bit_counts[{line_size // 4}];
  emitted = acc;
  return emitted;
}}
"""


def gtk_source(num_lines: int = 64, line_size: int = 64) -> str:
    """GTK plotting: the largest data footprint of the set (the paper notes
    ~3 MB); the plot buffer alone overflows the cache, and the style branch
    adds two more tables on top."""
    plot_lines = _lines(0.89, num_lines)
    plot_bytes = plot_lines * line_size
    style_bytes = 4 * line_size
    reuse = 12
    reuse_stmts = "\n  ".join(f"plot_buffer[{i * line_size}];" for i in range(reuse))
    return f"""
// gtk (MiBench): polyline plotting into a large backing buffer.
char plot_buffer[{plot_bytes}];
char pen_style[{style_bytes}];
char brush_style[{style_bytes}];
int style; int points;

int main() {{
  reg int i;
  int acc;
  for (i = 0; i < {plot_bytes}; i += {line_size}) {{
    plot_buffer[i];                           // rasterise the polyline
  }}
  acc = 0;
  if (style == 1) {{
    pen_style[0]; pen_style[{line_size}]; pen_style[{2 * line_size}];
    acc = acc + 1;
  }} else {{
    brush_style[0]; brush_style[{line_size}]; brush_style[{2 * line_size}];
    acc = acc + 2;
  }}
  if (points > 64) {{
    acc = acc + plot_buffer[0];
  }} else {{
    acc = acc + plot_buffer[{line_size}];
  }}
  {reuse_stmts}
  return acc;
}}
"""


def g72_source(num_lines: int = 64, line_size: int = 64) -> str:
    """G.721/G.723 conversion: predictor state plus two quantisation tables
    selected by the sign of the difference signal."""
    state_bytes = _lines(0.92, num_lines) * line_size
    table_bytes = 2 * line_size
    return f"""
// g72 (mediaBench): ADPCM coder state update.
int predictor_state[{state_bytes // 4}];
int quan_pos[{table_bytes // 4}];
int quan_neg[{table_bytes // 4}];
int diff; int step;

int main() {{
  reg int i;
  int acc;
  for (i = 0; i < {state_bytes // 4}; i += {line_size // 4}) {{
    predictor_state[i];
  }}
  acc = 0;
  if (diff >= 0) {{
    acc = quan_pos[0] + quan_pos[{line_size // 4}];
  }} else {{
    acc = quan_neg[0] + quan_neg[{line_size // 4}];
  }}
  if (step > 16) {{
    acc = acc + predictor_state[0];
  }} else {{
    acc = acc - predictor_state[{line_size // 4}];
  }}
  predictor_state[0]; predictor_state[{line_size // 4}];
  predictor_state[{2 * (line_size // 4)}];
  return acc;
}}
"""


def vga_source(num_lines: int = 64, line_size: int = 64) -> str:
    """VGA driver: a tiny routine with very few branches and a working set
    far below the cache size — speculation changes nothing here, matching
    the paper's row where both analyses report the same misses."""
    palette_bytes = 2 * line_size
    return f"""
// vga (mediaBench): Borland Graphics Interface palette write.
char palette[{palette_bytes}];
int mode;

int main() {{
  int acc;
  palette[0];
  palette[{line_size}];
  acc = 0;
  if (mode == 3) {{
    acc = palette[0];
  }} else {{
    acc = palette[{line_size}];
  }}
  palette[0];
  return acc;
}}
"""


def stc_source(num_lines: int = 64, line_size: int = 64) -> str:
    """Epson Stylus-Color printer driver: dithering tables plus a raster
    strip; the colour-plane branch touches plane-specific tables."""
    raster_lines = _lines(0.89, num_lines)
    raster_bytes = raster_lines * line_size
    dither_bytes = 3 * line_size
    reuse = min(7, raster_lines)
    reuse_stmts = "\n  ".join(f"raster[{i * line_size}];" for i in range(reuse))
    return f"""
// stc (mediaBench): printer driver colour dithering.
char raster[{raster_bytes}];
char dither_cyan[{dither_bytes}];
char dither_magenta[{dither_bytes}];
int plane; int row;

int main() {{
  reg int i;
  int acc;
  for (i = 0; i < {raster_bytes}; i += {line_size}) {{
    raster[i];                                // fetch the raster strip
  }}
  acc = 0;
  if (plane == 0) {{
    dither_cyan[0]; dither_cyan[{line_size}]; dither_cyan[{2 * line_size}];
    acc = acc + 1;
  }} else {{
    dither_magenta[0]; dither_magenta[{line_size}]; dither_magenta[{2 * line_size}];
    acc = acc + 2;
  }}
  if (row > 0) {{
    acc = acc + raster[0];
  }} else {{
    acc = acc - raster[{line_size}];
  }}
  {reuse_stmts}
  return acc;
}}
"""


#: Registry of the Table-3 benchmark set: name -> source generator.
WCET_BENCHMARKS: dict[str, Callable[[int, int], str]] = {
    "adpcm": adpcm_source,
    "susan": susan_source,
    "layer3": layer3_source,
    "jcmarker": jcmarker_source,
    "jdmarker": jdmarker_source,
    "jcphuff": jcphuff_source,
    "gtk": gtk_source,
    "g72": g72_source,
    "vga": vga_source,
    "stc": stc_source,
}


def wcet_benchmark_source(name: str, num_lines: int = 64, line_size: int = 64) -> str:
    """Source text of one Table-3 benchmark, scaled to the given cache."""
    try:
        generator = WCET_BENCHMARKS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown WCET benchmark {name!r}; known: {sorted(WCET_BENCHMARKS)}"
        ) from exc
    return generator(num_lines, line_size)


# ----------------------------------------------------------------------
# Scenario-scaling kernels
# ----------------------------------------------------------------------
def branchy_kernel_source(num_branches: int, line_size: int = 64) -> str:
    """A straight-line sequence of ``num_branches`` data-dependent diamonds.

    Every branch condition loads from its own (uncached) array, so each
    branch is a *may-miss* condition and contributes two full-depth
    speculation scenarios; the branch bodies alternate over four shared
    arrays so the abstract states stay small.  The result is a kernel
    whose scenario count — and, with overlapping windows, per-block slot
    population — scales linearly with ``num_branches`` while every other
    dimension stays fixed: exactly the workload that separates a
    scheduler paying O(#scenarios) per block visit from a sparse one.

    Used by ``benchmarks/bench_scenario_scaling.py`` and the engine's
    differential tests; not part of any paper table.
    """
    if num_branches < 1:
        raise ValueError("num_branches must be positive")
    decls = [f"char cond{i}[{line_size}];" for i in range(num_branches)]
    decls.append(
        f"char tka[{line_size}]; char tkb[{line_size}]; "
        f"char ela[{line_size}]; char elb[{line_size}];"
    )
    body = []
    for i in range(num_branches):
        taken = "tka" if i % 2 == 0 else "tkb"
        fallthrough = "ela" if i % 2 == 0 else "elb"
        body.append(f"  if (cond{i}[0]) {{ {taken}[0]; }} else {{ {fallthrough}[0]; }}")
    return (
        "\n".join(decls)
        + "\n\nint main() {\n"
        + "\n".join(body)
        + "\n  return 0;\n}\n"
    )


def taint_sparse_kernel_source(
    num_branches: int, num_lines: int = 64, line_size: int = 64
) -> str:
    """``num_branches`` access-free speculative diamonds plus one leaky tail.

    Each diamond branches on a register variable and its arm performs
    register-only arithmetic, so the speculative windows of its two
    scenarios are long (they run through the following diamonds up to
    the depth bound or the pre-tail ``fence``) but contain **no memory
    access** — the taint-driven pruner drops all ``2 * num_branches`` of
    them while the cold solver pays full per-scenario slot bookkeeping
    for each.  The tail is the Figure-2 shape (preload, an
    uncached-condition branch, a secret-indexed access), so exactly two
    scenarios stay relevant and the program still reports its
    speculation-only leak.  The result is a kernel whose *prunable
    fraction* approaches 1 as ``num_branches`` grows while the verdict
    stays fixed: the workload that separates a solver paying
    per-scenario slot bookkeeping from one that prunes first.

    Used by ``benchmarks/bench_taint_pruning.py`` and the pruning
    differential tests; not part of any paper table.
    """
    if num_branches < 1:
        raise ValueError("num_branches must be positive")
    ph_lines = max(2, num_lines - 2)
    ph_bytes = ph_lines * line_size
    decls = [
        f"char ph[{ph_bytes}];",
        f"char l1[{line_size}];",
        f"char l2[{line_size}];",
        "char q;",
        "reg int p;",
        "secret reg char k;",
    ]
    body = []
    for i in range(num_branches):
        body.append(f"  if (p > {i}) {{ p = p + {i + 1}; }}")
    # One fence keeps every sparse window out of the access-bearing tail.
    body.append("  fence;")
    body += [
        "  reg int i;",
        f"  for (i = 0; i < {ph_bytes}; i += {line_size}) {{",
        "    ph[i];",
        "  }",
        "  if (q == 0) {",
        "    l1[0];",
        "  } else {",
        "    l2[0];",
        "  }",
        "  ph[k];",
    ]
    return (
        "\n".join(decls)
        + "\n\nint main() {\n"
        + "\n".join(body)
        + "\n  return 0;\n}\n"
    )
