"""Benchmark-suite substrate.

* :mod:`repro.bench.programs` — MiniC sources for the paper's running
  examples (Figures 2, 7, 8/9, 11) and synthetic counterparts of the
  Table-3 WCET benchmark set.
* :mod:`repro.bench.crypto` — synthetic counterparts of the Table-4
  cryptographic benchmark set (kernels with secret-indexed tables).
* :mod:`repro.bench.client` — the Figure-10-style client harness that
  wraps a crypto kernel with an attacker-controlled buffer.
* :mod:`repro.bench.workloads` — parameter sweeps (buffer sizes, cache
  sizes, speculation depths).
* :mod:`repro.bench.tables` — drivers that regenerate Tables 5, 6 and 7
  and the figure-level experiments.
"""

from repro.bench.programs import (
    WCET_BENCHMARKS,
    figure7_source,
    figure11_source,
    motivating_example_source,
    quantl_client_source,
    wcet_benchmark_source,
)
from repro.bench.crypto import CRYPTO_BENCHMARKS, crypto_kernel
from repro.bench.client import build_client_source
from repro.bench.tables import (
    generate_table5,
    generate_table6,
    generate_table7,
    run_depth_ablation,
    run_motivating_example,
)

__all__ = [
    "CRYPTO_BENCHMARKS",
    "WCET_BENCHMARKS",
    "build_client_source",
    "crypto_kernel",
    "figure11_source",
    "figure7_source",
    "generate_table5",
    "generate_table6",
    "generate_table7",
    "motivating_example_source",
    "quantl_client_source",
    "run_depth_ablation",
    "run_motivating_example",
    "wcet_benchmark_source",
]
