"""Parameter sweeps used by the evaluation.

These mirror the way the paper explores its parameter space:

* :func:`sweep_buffer_sizes` / :func:`find_distinguishing_buffer` — the
  Table-7 procedure: vary the attacker-controlled buffer from the cache
  size down to zero and look for a size at which the speculative analysis
  reports a leak while the non-speculative one does not.
* :func:`sweep_speculation_depths` — sensitivity of the miss count to the
  ``bm`` bound (used by the depth ablation).
* :func:`sweep_cache_sizes` — how the comparison scales with cache size.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.apps.sidechannel import LeakComparison, compare_leaks
from repro.apps.wcet import WcetEstimate, estimate_wcet
from repro.bench.client import build_client_source
from repro.bench.crypto import crypto_kernel
from repro.cache.config import CacheConfig
from repro.frontend import compile_source
from repro.speculation.config import SpeculationConfig


@dataclass(frozen=True)
class BufferSweepPoint:
    """One point of the Table-7 buffer sweep."""

    kernel: str
    buffer_bytes: int
    comparison: LeakComparison

    @property
    def distinguishes(self) -> bool:
        return self.comparison.leak_only_under_speculation


def sweep_buffer_sizes(
    kernel_name: str,
    cache_config: CacheConfig,
    speculation: SpeculationConfig | None = None,
    buffer_sizes: Iterable[int] | None = None,
) -> Iterator[BufferSweepPoint]:
    """Analyse the client harness for every buffer size in ``buffer_sizes``
    (default: from the cache size down to zero, one line at a time)."""
    kernel = crypto_kernel(kernel_name, cache_config.num_lines, cache_config.line_size)
    if buffer_sizes is None:
        buffer_sizes = range(
            cache_config.size_bytes, -1, -cache_config.line_size
        )
    for buffer_bytes in buffer_sizes:
        source = build_client_source(
            kernel, buffer_bytes, line_size=cache_config.line_size
        )
        program = compile_source(source, line_size=cache_config.line_size)
        comparison = compare_leaks(
            program,
            cache_config=cache_config,
            speculation=speculation,
            buffer_bytes=buffer_bytes,
            name=kernel_name,
        )
        yield BufferSweepPoint(
            kernel=kernel_name, buffer_bytes=buffer_bytes, comparison=comparison
        )


def find_distinguishing_buffer(
    kernel_name: str,
    cache_config: CacheConfig,
    speculation: SpeculationConfig | None = None,
    buffer_sizes: Iterable[int] | None = None,
) -> BufferSweepPoint | None:
    """Return the sweep point with the *smallest* buffer at which only the
    speculative analysis reports a leak, or None when no size does."""
    best: BufferSweepPoint | None = None
    for point in sweep_buffer_sizes(
        kernel_name, cache_config, speculation, buffer_sizes
    ):
        if point.distinguishes and (best is None or point.buffer_bytes < best.buffer_bytes):
            best = point
    return best


@dataclass(frozen=True)
class DepthSweepPoint:
    """Miss counts as a function of the speculation depth bound."""

    depth_miss: int
    estimate: WcetEstimate


def sweep_speculation_depths(
    program,
    depths: Iterable[int],
    cache_config: CacheConfig | None = None,
) -> list[DepthSweepPoint]:
    """Estimate the WCET-relevant miss count under several ``bm`` bounds."""
    points: list[DepthSweepPoint] = []
    for depth in depths:
        speculation = SpeculationConfig.paper_default().with_depths(depth, min(20, depth))
        estimate = estimate_wcet(
            program, cache_config=cache_config, speculation=speculation, speculative=True
        )
        points.append(DepthSweepPoint(depth_miss=depth, estimate=estimate))
    return points


@dataclass(frozen=True)
class CacheSweepPoint:
    """Comparison results as a function of the cache size."""

    num_lines: int
    non_speculative_misses: int
    speculative_misses: int


def sweep_cache_sizes(
    source: str,
    cache_lines: Iterable[int],
    line_size: int = 64,
    speculation: SpeculationConfig | None = None,
) -> list[CacheSweepPoint]:
    """Compare the two analyses across cache sizes for one source program."""
    from repro.analysis import analyze_baseline, analyze_speculative

    points: list[CacheSweepPoint] = []
    program = compile_source(source, line_size=line_size)
    for num_lines in cache_lines:
        config = CacheConfig(num_lines=num_lines, line_size=line_size)
        base = analyze_baseline(program, cache_config=config)
        spec = analyze_speculative(
            program, cache_config=config, speculation=speculation
        )
        points.append(
            CacheSweepPoint(
                num_lines=num_lines,
                non_speculative_misses=base.miss_count,
                speculative_misses=spec.miss_count,
            )
        )
    return points
