"""The Figure-10 client harness.

The paper evaluates side-channel detection not on the crypto kernels in
isolation but on a *client program* that (1) preloads an S-box-like
lookup table, (2) reads an attacker-controlled input buffer, (3) calls
the kernel under test, and (4) finally accesses the S-box with a secret
index (the cipher's key).  The attacker can size the input buffer so that
the kernel's *speculative* footprint — but not its normal footprint —
pushes part of the S-box out of the cache, making step (4)'s latency
depend on the secret.

:func:`build_client_source` assembles that harness around any kernel from
:mod:`repro.bench.crypto`.
"""

from __future__ import annotations

from repro.bench.crypto import CryptoKernel

#: Size of the secret-indexed lookup table, in bytes.  512 bytes = 8 lines
#: of the default 64-byte-line cache: large enough that partial eviction is
#: observable, small enough that it normally stays resident.
DEFAULT_SBOX_BYTES = 512


def build_client_source(
    kernel: CryptoKernel,
    buffer_bytes: int,
    sbox_bytes: int = DEFAULT_SBOX_BYTES,
    line_size: int = 64,
) -> str:
    """Return a complete MiniC program: the kernel plus the client main.

    ``buffer_bytes`` is the attacker-controlled input size (the "Buffer"
    column of Table 7); it is touched one cache line at a time, exactly
    like Figure 10's warm-up loop.
    """
    sbox_bytes = max(line_size, (sbox_bytes // line_size) * line_size)
    buffer_bytes = max(0, (buffer_bytes // line_size) * line_size)
    buffer_decl = (
        f"char in_buf[{buffer_bytes}];" if buffer_bytes > 0 else "// no client buffer"
    )
    buffer_loop = (
        f"""
  for (i = 0; i < {buffer_bytes}; i += {line_size}) {{
    tmp = in_buf[i];                      // attacker-controlled buffer
  }}"""
        if buffer_bytes > 0
        else "\n  // attacker buffer elided (zero bytes)"
    )
    return f"""{kernel.source}

// ---- Figure-10 style client ----
const char sbox[{sbox_bytes}];
{buffer_decl}
secret int key;
int client_el;
int client_delt;

int main() {{
  reg int i;
  int tmp;
  for (i = 0; i < {sbox_bytes}; i += {line_size}) {{
    tmp = sbox[i];                        // preload the S-box
  }}{buffer_loop}
  tmp = {kernel.entry}(client_el, client_delt);
  tmp = sbox[key];                        // the cipher's secret-indexed access
  return tmp;
}}
"""
