"""Drivers that regenerate the paper's tables and figure-level experiments.

Every public function here corresponds to one experiment of DESIGN.md's
index and is wrapped by a benchmark under ``benchmarks/``:

* :func:`run_motivating_example` — Figure 2/3 (E1);
* :func:`generate_table5` — Table 5, execution-time estimation (E5);
* :func:`generate_table6` — Table 6, merge-strategy comparison (E6);
* :func:`generate_table7` — Table 7, side-channel detection (E7);
* :func:`run_depth_ablation` — Section 6.2 ablation (E8).

The evaluation cache is scaled from the paper's 512 x 64 B to 64 x 64 B
so the pure-Python analysis completes in seconds (the motivating example,
whose exact miss counts depend on the 512-line geometry, keeps the full
size).  EXPERIMENTS.md records the consequences of this scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis import analyze_baseline, analyze_speculative
from repro.apps.sidechannel import LeakComparison, LeakReport
from repro.apps.wcet import WcetComparison, WcetEstimate
from repro.bench.client import build_client_source
from repro.bench.crypto import CRYPTO_BENCHMARKS, crypto_kernel
from repro.bench.programs import WCET_BENCHMARKS, motivating_example_source, wcet_benchmark_source
from repro.cache.config import CacheConfig
from repro.engine.engine import AnalysisEngine, default_engine
from repro.engine.request import AnalysisRequest
from repro.frontend import compile_source
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy
from repro.speculation.predictor import OpposingPredictor, PerfectPredictor
from repro.speculation.simulator import SpeculativeSimulator

#: Cache used for the Table 5/6/7 reproductions (scaled; see module docstring).
BENCH_CACHE = CacheConfig(num_lines=64, line_size=64)

#: Speculation parameters used for the reproductions (the paper's defaults).
BENCH_SPECULATION = SpeculationConfig.paper_default()

#: Attacker-controlled buffer sizes (bytes) used for Table 7, one per crypto
#: benchmark.  They were derived with
#: :func:`repro.bench.workloads.find_distinguishing_buffer`, i.e. by the same
#: sweep the paper describes ("we set the buffer size to various values ...
#: until the two methods return different results"); kernels for which no
#: size distinguishes the analyses use the full cache size, mirroring the
#: paper's 32768-byte rows.
TABLE7_BUFFER_BYTES: dict[str, int] = {
    "hash": 2752,
    "encoder": 2880,
    "chacha20": 2688,
    "ocb": 2816,
    "aes": 4096,
    "str2key": 4096,
    "des": 0,
    "seed": 4096,
    "camellia": 4096,
    "salsa": 4096,
}


def table7_client_request(
    name: str, cache_config: CacheConfig | None = None
) -> AnalysisRequest:
    """The speculative request for one crypto kernel's Figure-10 client
    harness at the Table-7 configuration.

    One definition shared by the ``repro mitigate`` CLI, the mitigation
    example and ``benchmarks/bench_mitigation.py``, so all three analyse
    the identical program (and hash to the same cache keys).

    ``cache_config`` overrides the cache geometry/policy while keeping
    the Table-7 program (kernel and buffer sizes are always derived from
    ``BENCH_CACHE`` so the analysed source stays identical across
    geometries — only the cache model changes).
    """
    cache = cache_config or BENCH_CACHE
    kernel = crypto_kernel(name, BENCH_CACHE.num_lines, BENCH_CACHE.line_size)
    buffer_bytes = TABLE7_BUFFER_BYTES.get(name, BENCH_CACHE.size_bytes)
    source = build_client_source(kernel, buffer_bytes, line_size=BENCH_CACHE.line_size)
    return AnalysisRequest.speculative(
        source,
        line_size=BENCH_CACHE.line_size,
        cache_config=cache,
        speculation=BENCH_SPECULATION,
        label=name,
    )


# ----------------------------------------------------------------------
# E1: the motivating example (Figures 2 and 3)
# ----------------------------------------------------------------------
@dataclass
class MotivatingExampleResult:
    """Everything Figure 2/3 claims, measured."""

    non_speculative_must_hit: bool
    speculative_must_hit: bool
    non_speculative_leak: bool
    speculative_leak: bool
    concrete_misses_correct_prediction: int
    concrete_hits_correct_prediction: int
    concrete_misses_misprediction: int
    concrete_observable_misses_misprediction: int


def run_motivating_example(
    num_lines: int = 512, line_size: int = 64
) -> MotivatingExampleResult:
    """Reproduce the Figure 2/3 numbers: 512 misses + 1 hit without
    misprediction vs 514 misses (513 observable) with it, and the
    corresponding analysis verdicts."""
    source = motivating_example_source(num_lines=num_lines, line_size=line_size)
    program = compile_source(source, line_size=line_size)
    cache = CacheConfig(num_lines=num_lines, line_size=line_size)

    base = analyze_baseline(program, cache_config=cache)
    spec = analyze_speculative(program, cache_config=cache, speculation=BENCH_SPECULATION)

    def secret_hit(result) -> bool:
        flags = [c.must_hit for c in result.normal_classifications() if c.secret_indexed]
        return all(flags) and bool(flags)

    perfect = SpeculativeSimulator(
        program, cache_config=cache, predictor=PerfectPredictor(), record_accesses=False
    ).run()
    # The Figure 3 trace rolls back right after the wrong branch's load
    # (the branch resolves as soon as ``p`` arrives); fixing the excursion
    # length to that rollback point reproduces the 514-miss trace.
    mispredicted = SpeculativeSimulator(
        program,
        cache_config=cache,
        speculation=BENCH_SPECULATION,
        predictor=OpposingPredictor(),
        record_accesses=False,
        excursion_length=2,
    ).run()

    return MotivatingExampleResult(
        non_speculative_must_hit=secret_hit(base),
        speculative_must_hit=secret_hit(spec),
        non_speculative_leak=base.leak_detected,
        speculative_leak=spec.leak_detected,
        concrete_misses_correct_prediction=perfect.stats.misses,
        concrete_hits_correct_prediction=perfect.stats.hits,
        concrete_misses_misprediction=mispredicted.stats.misses,
        concrete_observable_misses_misprediction=mispredicted.stats.observable_misses,
    )


# ----------------------------------------------------------------------
# E5: Table 5 — execution-time estimation
# ----------------------------------------------------------------------
def generate_table5(
    names: list[str] | None = None,
    cache_config: CacheConfig | None = None,
    speculation: SpeculationConfig | None = None,
    engine: AnalysisEngine | None = None,
    max_workers: int | None = None,
) -> list[WcetComparison]:
    """Run the non-speculative and speculative analyses on every WCET
    benchmark and return one comparison row per benchmark.

    All 2x|names| analyses are submitted to the engine as one batch: each
    benchmark compiles once (shared by both analysis kinds) and, with
    ``max_workers > 1`` (or ``REPRO_MAX_WORKERS`` set), the batch fans out
    over a process pool.
    """
    cache = cache_config or BENCH_CACHE
    spec = speculation or BENCH_SPECULATION
    names = names or list(WCET_BENCHMARKS)
    eng = engine or default_engine()
    requests: list[AnalysisRequest] = []
    for name in names:
        source = wcet_benchmark_source(name, cache.num_lines, cache.line_size)
        common = dict(source=source, line_size=cache.line_size, cache_config=cache, label=name)
        requests.append(AnalysisRequest.baseline(**common))
        requests.append(AnalysisRequest.speculative(speculation=spec, **common))
    results = eng.run_batch(requests, max_workers=max_workers)
    rows: list[WcetComparison] = []
    for name, base, spec_result in zip(names, results[0::2], results[1::2]):
        rows.append(
            WcetComparison(
                name=name,
                non_speculative=WcetEstimate.from_result(name, base, cache),
                speculative=WcetEstimate.from_result(name, spec_result, cache),
            )
        )
    return rows


# ----------------------------------------------------------------------
# E6: Table 6 — merge-strategy comparison
# ----------------------------------------------------------------------
def generate_table6(
    names: list[str] | None = None,
    cache_config: CacheConfig | None = None,
    engine: AnalysisEngine | None = None,
    max_workers: int | None = None,
) -> list[tuple[str, WcetComparison, WcetComparison]]:
    """Compare merge-at-rollback (Figure 6d) with Just-in-Time merging
    (Figure 6c) on the WCET benchmark set.

    Submitted as one batch of 3x|names| requests (the non-speculative
    baseline is strategy-independent, so it is analysed once per benchmark
    and shared between the two comparisons)."""
    cache = cache_config or BENCH_CACHE
    names = names or list(WCET_BENCHMARKS)
    eng = engine or default_engine()
    rollback = BENCH_SPECULATION.with_strategy(MergeStrategy.MERGE_AT_ROLLBACK)
    jit = BENCH_SPECULATION.with_strategy(MergeStrategy.JUST_IN_TIME)
    requests: list[AnalysisRequest] = []
    for name in names:
        source = wcet_benchmark_source(name, cache.num_lines, cache.line_size)
        common = dict(source=source, line_size=cache.line_size, cache_config=cache, label=name)
        requests.append(AnalysisRequest.baseline(**common))
        requests.append(AnalysisRequest.speculative(speculation=rollback, **common))
        requests.append(AnalysisRequest.speculative(speculation=jit, **common))
    results = eng.run_batch(requests, max_workers=max_workers)
    rows: list[tuple[str, WcetComparison, WcetComparison]] = []
    for index, name in enumerate(names):
        base, rollback_result, jit_result = results[3 * index : 3 * index + 3]
        base_estimate = WcetEstimate.from_result(name, base, cache)
        rows.append(
            (
                name,
                WcetComparison(
                    name=name,
                    non_speculative=base_estimate,
                    speculative=WcetEstimate.from_result(name, rollback_result, cache),
                ),
                WcetComparison(
                    name=name,
                    non_speculative=base_estimate,
                    speculative=WcetEstimate.from_result(name, jit_result, cache),
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# E7: Table 7 — side-channel detection
# ----------------------------------------------------------------------
def generate_table7(
    names: list[str] | None = None,
    cache_config: CacheConfig | None = None,
    speculation: SpeculationConfig | None = None,
    buffer_bytes: dict[str, int] | None = None,
    engine: AnalysisEngine | None = None,
    max_workers: int | None = None,
) -> list[LeakComparison]:
    """Run leak detection on every crypto benchmark's client harness.

    Submitted as one batch of 2x|names| requests through the engine."""
    cache = cache_config or BENCH_CACHE
    spec = speculation or BENCH_SPECULATION
    buffers = dict(TABLE7_BUFFER_BYTES)
    if buffer_bytes:
        buffers.update(buffer_bytes)
    names = names or list(CRYPTO_BENCHMARKS)
    eng = engine or default_engine()
    requests: list[AnalysisRequest] = []
    row_buffers: list[int] = []
    for name in names:
        kernel = crypto_kernel(name, cache.num_lines, cache.line_size)
        buffer = buffers.get(name, cache.size_bytes)
        row_buffers.append(buffer)
        source = build_client_source(kernel, buffer, line_size=cache.line_size)
        common = dict(source=source, line_size=cache.line_size, cache_config=cache, label=name)
        requests.append(AnalysisRequest.baseline(**common))
        requests.append(AnalysisRequest.speculative(speculation=spec, **common))
    results = eng.run_batch(requests, max_workers=max_workers)
    rows: list[LeakComparison] = []
    for name, buffer, base, spec_result in zip(
        names, row_buffers, results[0::2], results[1::2]
    ):
        rows.append(
            LeakComparison(
                name=name,
                buffer_bytes=buffer,
                non_speculative=LeakReport.from_result(name, base, False),
                speculative=LeakReport.from_result(name, spec_result, True),
            )
        )
    return rows


# ----------------------------------------------------------------------
# E8: Section 6.2 — dynamic depth-bounding ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DepthAblationRow:
    """One benchmark analysed with and without dynamic depth bounding."""

    name: str
    misses_with_bounding: int
    misses_without_bounding: int
    edges_with_bounding: int
    edges_without_bounding: int
    time_with_bounding: float
    time_without_bounding: float

    @property
    def edges_removed(self) -> int:
        return self.edges_without_bounding - self.edges_with_bounding


def run_depth_ablation(
    names: list[str] | None = None,
    cache_config: CacheConfig | None = None,
    engine: AnalysisEngine | None = None,
    max_workers: int | None = None,
) -> list[DepthAblationRow]:
    """Measure what the Section-6.2 optimisation buys on the WCET set.

    Submitted as one batch of 2x|names| speculative analyses, with and
    without dynamic depth bounding."""
    cache = cache_config or BENCH_CACHE
    names = names or list(WCET_BENCHMARKS)
    eng = engine or default_engine()
    bounded = replace(BENCH_SPECULATION, dynamic_depth_bounding=True)
    unbounded = replace(BENCH_SPECULATION, dynamic_depth_bounding=False)
    requests: list[AnalysisRequest] = []
    for name in names:
        source = wcet_benchmark_source(name, cache.num_lines, cache.line_size)
        common = dict(source=source, line_size=cache.line_size, cache_config=cache, label=name)
        requests.append(AnalysisRequest.speculative(speculation=bounded, **common))
        requests.append(AnalysisRequest.speculative(speculation=unbounded, **common))
    results = eng.run_batch(requests, max_workers=max_workers)
    rows: list[DepthAblationRow] = []
    for name, with_bounding, without_bounding in zip(
        names, results[0::2], results[1::2]
    ):
        rows.append(
            DepthAblationRow(
                name=name,
                misses_with_bounding=with_bounding.miss_count,
                misses_without_bounding=without_bounding.miss_count,
                edges_with_bounding=with_bounding.num_virtual_edges_active,
                edges_without_bounding=without_bounding.num_virtual_edges_active,
                time_with_bounding=with_bounding.analysis_time,
                time_without_bounding=without_bounding.analysis_time,
            )
        )
    return rows
