"""Timing side-channel detection (the paper's second application).

A *leak* is a dependency between the cache behaviour of the program and
secret data: if a secret-indexed table access can hit for some secret
values and miss for others, an attacker measuring execution time learns
something about the secret (Section 2.2).

The detector runs the must-hit analysis and inspects every secret-indexed
access site: a leak is reported when some of the blocks the access may
touch are proven cached while others are not — i.e. the access's latency
depends on which element (hence which secret value) is used.

As in the paper's Table 7, the detector is typically run on a *client
harness* (Figure 10) that preloads the secret-indexed table, fills an
attacker-controlled buffer, calls the kernel under test, and then touches
the table with a secret index; :mod:`repro.bench.client` generates these
harnesses for the crypto benchmark kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.result import AccessClassification, CacheAnalysisResult
from repro.cache.config import CacheConfig
from repro.engine.engine import AnalysisEngine, default_engine
from repro.engine.request import program_request
from repro.frontend import CompiledProgram
from repro.speculation.config import SpeculationConfig


@dataclass(frozen=True)
class LeakSite:
    """One secret-indexed access whose timing may depend on the secret."""

    block: str
    instruction_index: int
    symbol: str
    line: int

    @classmethod
    def from_classification(cls, classification: AccessClassification) -> "LeakSite":
        return cls(
            block=classification.block,
            instruction_index=classification.instruction_index,
            symbol=classification.ref.symbol,
            line=classification.ref.line,
        )


def explain_leaks(program: CompiledProgram, sites) -> dict:
    """Blame paths for leak sites: ``{(block, instruction_index): [BlameStep]}``.

    ``sites`` is an iterable of :class:`LeakSite` values or bare
    ``(block, instruction_index)`` pairs.  Each path is the shortest
    recorded def-use chain from a secret source to the leaking access
    (see :meth:`repro.analysis.taint.TaintResult.blame_path`); a site the
    taint pass cannot reach maps to None — that would indicate the leak
    detector and the taint pass disagree, which the soundness tests rule
    out for secret-indexed accesses.
    """
    from repro.analysis.taint import analyze_taint

    taint = analyze_taint(program)
    blames: dict = {}
    for site in sites:
        if isinstance(site, LeakSite):
            key = (site.block, site.instruction_index)
        else:
            block, instruction_index = site
            key = (block, instruction_index)
        blames[key] = taint.blame_path(*key)
    return blames


@dataclass
class LeakReport:
    """Outcome of leak detection with one analysis."""

    name: str
    speculative: bool
    analysis_time: float
    secret_sites: int
    leak_sites: list[LeakSite] = field(default_factory=list)

    @property
    def leak_detected(self) -> bool:
        return bool(self.leak_sites)

    @classmethod
    def from_result(
        cls, name: str, result: CacheAnalysisResult, speculative: bool
    ) -> "LeakReport":
        sites = [
            LeakSite.from_classification(c)
            for c in result.secret_dependent_classifications()
        ]
        return cls(
            name=name,
            speculative=speculative,
            analysis_time=result.analysis_time,
            secret_sites=len(result.secret_indexed_classifications()),
            leak_sites=sites,
        )


@dataclass(frozen=True)
class LeakComparison:
    """One Table-7 row: non-speculative vs speculative leak detection."""

    name: str
    buffer_bytes: int
    non_speculative: LeakReport
    speculative: LeakReport

    @property
    def leak_only_under_speculation(self) -> bool:
        """The paper's headline case: the program looks leak-free to the
        unsound baseline but leaks once speculation is modelled."""
        return self.speculative.leak_detected and not self.non_speculative.leak_detected


def detect_leaks(
    program: CompiledProgram,
    cache_config: CacheConfig | None = None,
    speculation: SpeculationConfig | None = None,
    speculative: bool = True,
    name: str | None = None,
    engine: AnalysisEngine | None = None,
) -> LeakReport:
    """Run leak detection on ``program`` with one analysis flavour.

    The analysis is submitted through ``engine`` (the process-wide default
    when omitted) and benefits from its compile and result caches.
    """
    label = name or program.cfg.name
    request = program_request(program, cache_config, speculation, speculative, label)
    result = (engine or default_engine()).run(request, program=program)
    return LeakReport.from_result(label, result, speculative)


def compare_leaks(
    program: CompiledProgram,
    cache_config: CacheConfig | None = None,
    speculation: SpeculationConfig | None = None,
    buffer_bytes: int = 0,
    name: str | None = None,
    engine: AnalysisEngine | None = None,
) -> LeakComparison:
    """Produce one Table-7 row for ``program``.

    Both analyses are submitted through the engine as one batch.
    """
    label = name or program.cfg.name
    eng = engine or default_engine()
    eng.seed_program(program_request(program, cache_config, label=label), program)
    non_spec_result, spec_result = eng.run_batch(
        [
            program_request(program, cache_config, speculative=False, label=label),
            program_request(program, cache_config, speculation, speculative=True, label=label),
        ]
    )
    return LeakComparison(
        name=label,
        buffer_bytes=buffer_bytes,
        non_speculative=LeakReport.from_result(label, non_spec_result, False),
        speculative=LeakReport.from_result(label, spec_result, True),
    )
