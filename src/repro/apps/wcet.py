"""Execution-time estimation on top of the cache analyses.

The paper's Table 5 compares, per benchmark, the non-speculative and the
speculative analysis in terms of analysis time, the number of cache
misses detected, the number of speculative misses, the number of
speculatively executable branches, and the number of fixpoint
iterations.  :func:`compare_wcet` produces exactly that row.

A simple cycle estimate is also derived: every access site proven to be a
must hit contributes the hit latency, every other site the miss penalty.
This is a per-site static bound (it does not multiply by loop trip
counts), which is the same granularity at which the paper reports
"#Miss"; it is sufficient to compare analyses and to show that ignoring
speculation underestimates the bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.result import CacheAnalysisResult
from repro.cache.config import CacheConfig
from repro.engine.engine import AnalysisEngine, default_engine
from repro.engine.request import program_request
from repro.frontend import CompiledProgram
from repro.speculation.config import SpeculationConfig


def estimated_cycles(must_hits: int, misses: int, cache_config: CacheConfig) -> int:
    """The per-site static cycle bound: every access proven a must hit
    contributes the hit latency, every other site the miss penalty.

    The single definition of the cycle model — shared by
    :class:`WcetEstimate` and the ``repro wcet`` service client, so the
    two can never diverge.
    """
    return (
        must_hits * cache_config.hit_latency + misses * cache_config.miss_penalty
    )


@dataclass(frozen=True)
class WcetEstimate:
    """Execution-time estimate derived from one analysis run."""

    name: str
    analysis_time: float
    access_sites: int
    must_hits: int
    misses: int
    speculative_misses: int
    branches: int
    iterations: int
    estimated_cycles: int

    @classmethod
    def from_result(
        cls, name: str, result: CacheAnalysisResult, cache_config: CacheConfig
    ) -> "WcetEstimate":
        cycles = estimated_cycles(result.hit_count, result.miss_count, cache_config)
        return cls(
            name=name,
            analysis_time=result.analysis_time,
            access_sites=result.access_count,
            must_hits=result.hit_count,
            misses=result.miss_count,
            speculative_misses=result.speculative_miss_count,
            branches=result.num_speculative_branches,
            iterations=result.iterations,
            estimated_cycles=cycles,
        )


@dataclass(frozen=True)
class WcetComparison:
    """One Table-5 row: the same program analysed both ways."""

    name: str
    non_speculative: WcetEstimate
    speculative: WcetEstimate

    @property
    def additional_misses(self) -> int:
        """Misses visible only when speculation is modelled — the behaviours
        the unsound baseline overlooks."""
        return self.speculative.misses - self.non_speculative.misses

    @property
    def underestimated(self) -> bool:
        """True when the non-speculative bound is lower than the sound one
        (i.e. the baseline may produce a bogus deadline proof)."""
        return self.speculative.estimated_cycles > self.non_speculative.estimated_cycles

    @property
    def slowdown(self) -> float:
        """Analysis-time ratio speculative / non-speculative."""
        if self.non_speculative.analysis_time == 0:
            return float("inf")
        return self.speculative.analysis_time / self.non_speculative.analysis_time


def estimate_wcet(
    program: CompiledProgram,
    cache_config: CacheConfig | None = None,
    speculation: SpeculationConfig | None = None,
    speculative: bool = True,
    name: str | None = None,
    engine: AnalysisEngine | None = None,
) -> WcetEstimate:
    """Estimate the WCET-relevant miss count of ``program`` with one analysis.

    The analysis is submitted through ``engine`` (the process-wide default
    when omitted), so repeated estimates of the same program and
    configuration are answered from the result cache.
    """
    config = cache_config or CacheConfig.paper_default()
    label = name or program.cfg.name
    request = program_request(program, config, speculation, speculative, label)
    result = (engine or default_engine()).run(request, program=program)
    return WcetEstimate.from_result(label, result, config)


def compare_wcet(
    program: CompiledProgram,
    cache_config: CacheConfig | None = None,
    speculation: SpeculationConfig | None = None,
    name: str | None = None,
    engine: AnalysisEngine | None = None,
) -> WcetComparison:
    """Produce one Table-5 row for ``program``.

    Both analyses are submitted through the engine as one batch.
    """
    config = cache_config or CacheConfig.paper_default()
    label = name or program.cfg.name
    eng = engine or default_engine()
    eng.seed_program(program_request(program, config, label=label), program)
    non_spec_result, spec_result = eng.run_batch(
        [
            program_request(program, config, speculative=False, label=label),
            program_request(program, config, speculation, speculative=True, label=label),
        ]
    )
    return WcetComparison(
        name=label,
        non_speculative=WcetEstimate.from_result(label, non_spec_result, config),
        speculative=WcetEstimate.from_result(label, spec_result, config),
    )
