"""Applications of the speculative cache analysis.

The paper evaluates its analysis on two problems (Section 7):

* :mod:`repro.apps.wcet` — execution-time estimation: counting the memory
  accesses that may miss, and turning them into a worst-case execution
  time bound (Table 5 / Table 6).
* :mod:`repro.apps.sidechannel` — timing side-channel detection: deciding
  whether the cache behaviour of secret-indexed accesses can depend on the
  secret (Table 7), including the Figure-10-style client harness.
"""

from repro.apps.wcet import WcetComparison, WcetEstimate, compare_wcet, estimate_wcet
from repro.apps.sidechannel import (
    LeakComparison,
    LeakReport,
    compare_leaks,
    detect_leaks,
)
from repro.apps.report import format_comparison_table, format_leak_table

__all__ = [
    "LeakComparison",
    "LeakReport",
    "WcetComparison",
    "WcetEstimate",
    "compare_leaks",
    "compare_wcet",
    "detect_leaks",
    "estimate_wcet",
    "format_comparison_table",
    "format_leak_table",
]
