"""Plain-text report formatting for the applications.

These helpers render the comparison objects of :mod:`repro.apps.wcet` and
:mod:`repro.apps.sidechannel` as fixed-width tables shaped like Tables 5,
6 and 7 of the paper, so the benchmark harness can print results that are
directly comparable with the published numbers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.apps.sidechannel import LeakComparison
from repro.apps.wcet import WcetComparison


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def format_comparison_table(rows: Sequence[WcetComparison], title: str = "Table 5") -> str:
    """Render Table-5-style rows (execution-time estimation)."""
    header = [
        "Name",
        "NS-Time(s)",
        "NS-#Miss",
        "SP-Time(s)",
        "SP-#Miss",
        "#SpMiss",
        "#Branch",
        "#Iteration",
    ]
    table_rows = [header]
    for row in rows:
        table_rows.append(
            [
                row.name,
                f"{row.non_speculative.analysis_time:.2f}",
                str(row.non_speculative.misses),
                f"{row.speculative.analysis_time:.2f}",
                str(row.speculative.misses),
                str(row.speculative.speculative_misses),
                str(row.speculative.branches),
                str(row.speculative.iterations),
            ]
        )
    widths = [max(len(row[i]) for row in table_rows) for i in range(len(header))]
    lines = [title, _format_row(header, widths), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(_format_row(row, widths) for row in table_rows[1:])
    return "\n".join(lines)


def format_merge_table(
    rows: Sequence[tuple[str, WcetComparison, WcetComparison]], title: str = "Table 6"
) -> str:
    """Render Table-6-style rows comparing two merge strategies.

    Each entry is ``(name, at_rollback_comparison, jit_comparison)``; only
    the speculative halves are used.
    """
    header = [
        "Name",
        "RB-Time(s)",
        "RB-#Miss",
        "RB-#SpMiss",
        "RB-#Ite",
        "JIT-Time(s)",
        "JIT-#Miss",
        "JIT-#SpMiss",
        "JIT-#Ite",
    ]
    table_rows = [header]
    for name, rollback, jit in rows:
        table_rows.append(
            [
                name,
                f"{rollback.speculative.analysis_time:.2f}",
                str(rollback.speculative.misses),
                str(rollback.speculative.speculative_misses),
                str(rollback.speculative.iterations),
                f"{jit.speculative.analysis_time:.2f}",
                str(jit.speculative.misses),
                str(jit.speculative.speculative_misses),
                str(jit.speculative.iterations),
            ]
        )
    widths = [max(len(row[i]) for row in table_rows) for i in range(len(header))]
    lines = [title, _format_row(header, widths), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(_format_row(row, widths) for row in table_rows[1:])
    return "\n".join(lines)


def format_leak_table(rows: Sequence[LeakComparison], title: str = "Table 7") -> str:
    """Render Table-7-style rows (side-channel detection)."""
    header = [
        "Name",
        "Buffer(byte)",
        "NS-Time(s)",
        "NS-Leak",
        "SP-Time(s)",
        "SP-Leak",
    ]
    table_rows = [header]
    for row in rows:
        table_rows.append(
            [
                row.name,
                str(row.buffer_bytes),
                f"{row.non_speculative.analysis_time:.2f}",
                "Yes" if row.non_speculative.leak_detected else "No",
                f"{row.speculative.analysis_time:.2f}",
                "Yes" if row.speculative.leak_detected else "No",
            ]
        )
    widths = [max(len(row[i]) for row in table_rows) for i in range(len(header))]
    lines = [title, _format_row(header, widths), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(_format_row(row, widths) for row in table_rows[1:])
    return "\n".join(lines)
