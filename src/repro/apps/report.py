"""Plain-text report formatting for the applications.

These helpers render the comparison objects of :mod:`repro.apps.wcet` and
:mod:`repro.apps.sidechannel` as fixed-width tables shaped like Tables 5,
6 and 7 of the paper, so the benchmark harness can print results that are
directly comparable with the published numbers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.apps.sidechannel import LeakComparison
from repro.apps.wcet import WcetComparison


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def _render_table(title: str, table_rows: list[list[str]]) -> str:
    """Shared table epilogue: size columns, emit title/header/rule/rows.

    ``table_rows[0]`` is the header; every row must have the same arity.
    """
    header = table_rows[0]
    widths = [max(len(row[i]) for row in table_rows) for i in range(len(header))]
    lines = [
        title,
        _format_row(header, widths),
        "-" * (sum(widths) + 2 * (len(widths) - 1)),
    ]
    lines.extend(_format_row(row, widths) for row in table_rows[1:])
    return "\n".join(lines)


def format_comparison_table(rows: Sequence[WcetComparison], title: str = "Table 5") -> str:
    """Render Table-5-style rows (execution-time estimation)."""
    header = [
        "Name",
        "NS-Time(s)",
        "NS-#Miss",
        "SP-Time(s)",
        "SP-#Miss",
        "#SpMiss",
        "#Branch",
        "#Iteration",
    ]
    table_rows = [header]
    for row in rows:
        table_rows.append(
            [
                row.name,
                f"{row.non_speculative.analysis_time:.2f}",
                str(row.non_speculative.misses),
                f"{row.speculative.analysis_time:.2f}",
                str(row.speculative.misses),
                str(row.speculative.speculative_misses),
                str(row.speculative.branches),
                str(row.speculative.iterations),
            ]
        )
    return _render_table(title, table_rows)


def format_merge_table(
    rows: Sequence[tuple[str, WcetComparison, WcetComparison]], title: str = "Table 6"
) -> str:
    """Render Table-6-style rows comparing two merge strategies.

    Each entry is ``(name, at_rollback_comparison, jit_comparison)``; only
    the speculative halves are used.
    """
    header = [
        "Name",
        "RB-Time(s)",
        "RB-#Miss",
        "RB-#SpMiss",
        "RB-#Ite",
        "JIT-Time(s)",
        "JIT-#Miss",
        "JIT-#SpMiss",
        "JIT-#Ite",
    ]
    table_rows = [header]
    for name, rollback, jit in rows:
        table_rows.append(
            [
                name,
                f"{rollback.speculative.analysis_time:.2f}",
                str(rollback.speculative.misses),
                str(rollback.speculative.speculative_misses),
                str(rollback.speculative.iterations),
                f"{jit.speculative.analysis_time:.2f}",
                str(jit.speculative.misses),
                str(jit.speculative.speculative_misses),
                str(jit.speculative.iterations),
            ]
        )
    return _render_table(title, table_rows)


def format_leak_table(rows: Sequence[LeakComparison], title: str = "Table 7") -> str:
    """Render Table-7-style rows (side-channel detection)."""
    header = [
        "Name",
        "Buffer(byte)",
        "NS-Time(s)",
        "NS-Leak",
        "SP-Time(s)",
        "SP-Leak",
    ]
    table_rows = [header]
    for row in rows:
        table_rows.append(
            [
                row.name,
                str(row.buffer_bytes),
                f"{row.non_speculative.analysis_time:.2f}",
                "Yes" if row.non_speculative.leak_detected else "No",
                f"{row.speculative.analysis_time:.2f}",
                "Yes" if row.speculative.leak_detected else "No",
            ]
        )
    return _render_table(title, table_rows)


def format_blame_paths(name: str, blames: dict) -> str:
    """Render leak blame paths as an indented text block.

    ``blames`` maps ``(block, instruction_index)`` to a list of
    :class:`repro.analysis.taint.BlameStep` values (or None when the
    taint pass has no path — rendered as such rather than hidden, since
    a pathless leak site is a signal worth surfacing).
    """
    lines = [f"{name}: {len(blames)} leaking access site(s)"]
    for (block, instruction_index), path in sorted(blames.items()):
        lines.append(f"  {block}[{instruction_index}]:")
        if not path:
            lines.append("    (no taint path recorded)")
            continue
        lines.extend(f"    {step.render()}" for step in path)
    return "\n".join(lines)


def format_mitigation_table(results: Sequence, title: str = "Mitigation synthesis") -> str:
    """Render mitigation-synthesis rows (naive vs optimized placement).

    ``results`` are :class:`repro.mitigation.MitigationResult` values
    (typed loosely so this formatting module stays below the mitigation
    package in the import order).
    """
    header = [
        "Name",
        "#Leak",
        "Naive-Fences",
        "Naive-Ovh(cyc)",
        "Opt-Fences",
        "Opt-Ovh(cyc)",
        "Chosen",
        "Verified",
    ]
    table_rows = [header]
    for result in results:
        baseline, optimized = result.baseline, result.optimized
        selected = result.selected()
        table_rows.append(
            [
                result.name,
                str(result.leak_sites_before),
                "-" if baseline is None else str(baseline.source_fences),
                "-" if baseline is None else str(baseline.wcet_overhead_cycles),
                "-" if optimized is None else str(optimized.source_fences),
                "-" if optimized is None else str(optimized.wcet_overhead_cycles),
                result.chosen,
                "yes" if selected is not None and selected.verified else (
                    "n/a" if result.already_safe else "NO"
                ),
            ]
        )
    return _render_table(title, table_rows)
