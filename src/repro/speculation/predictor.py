"""Branch predictors for the concrete speculative simulator.

The abstract analysis does not depend on the prediction strategy (it
conservatively considers both mispredictions at every branch); the
concrete simulator, however, needs a predictor to decide *when* a
misprediction — and therefore a speculative excursion — actually happens.
Several classic predictors are provided so experiments can vary the
amount of concrete speculation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field


class BranchPredictor(ABC):
    """Interface: predict the outcome of a branch, then learn the truth."""

    @abstractmethod
    def predict(self, branch_id: str) -> bool:
        """Return the predicted outcome (True = taken)."""

    def update(self, branch_id: str, taken: bool) -> None:
        """Learn the actual outcome.  Stateless predictors ignore this."""

    def reset(self) -> None:
        """Forget any learned state."""


@dataclass
class AlwaysTakenPredictor(BranchPredictor):
    """Static predict-taken."""

    def predict(self, branch_id: str) -> bool:
        return True


@dataclass
class AlwaysNotTakenPredictor(BranchPredictor):
    """Static predict-not-taken."""

    def predict(self, branch_id: str) -> bool:
        return False


@dataclass
class PerfectPredictor(BranchPredictor):
    """An oracle that never mispredicts.

    The simulator special-cases it: with a perfect predictor no
    speculative excursion ever happens, which makes it the concrete
    counterpart of the non-speculative analysis.
    """

    def predict(self, branch_id: str) -> bool:  # pragma: no cover - never consulted
        return True


@dataclass
class BimodalPredictor(BranchPredictor):
    """Per-branch two-bit saturating counters (the classic bimodal table).

    Counter values 0-1 predict not-taken, 2-3 predict taken; the counter
    moves one step toward the actual outcome on every update.
    """

    initial: int = 2
    counters: dict[str, int] = field(default_factory=dict)

    def predict(self, branch_id: str) -> bool:
        return self.counters.get(branch_id, self.initial) >= 2

    def update(self, branch_id: str, taken: bool) -> None:
        counter = self.counters.get(branch_id, self.initial)
        counter = min(counter + 1, 3) if taken else max(counter - 1, 0)
        self.counters[branch_id] = counter

    def reset(self) -> None:
        self.counters.clear()


@dataclass
class OpposingPredictor(BranchPredictor):
    """An adversarial predictor that always guesses wrong.

    It needs to be told the actual outcome before predicting, which the
    simulator does by calling :meth:`prime`.  Useful for exercising the
    maximum amount of speculative pollution in tests.
    """

    _next_actual: bool | None = None

    def prime(self, actual: bool) -> None:
        self._next_actual = actual

    def predict(self, branch_id: str) -> bool:
        if self._next_actual is None:
            return True
        return not self._next_actual

    def reset(self) -> None:
        self._next_actual = None
