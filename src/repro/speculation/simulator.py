"""Concrete speculative executor — the repository's GEM5 substitute.

The simulator interprets the IR with concrete values, models a concrete
LRU cache, and — crucially — performs *speculative excursions*: when the
branch predictor mispredicts, it executes the wrong path for a bounded
number of instructions, touching the cache, then rolls back every
register and memory value but **not** the cache.  This is exactly the
behaviour that makes classical cache analyses unsound and that the
paper's analysis models abstractly.

It is used to (a) validate the soundness of the abstract analyses
(an access the analysis classifies as a must hit may never miss
concretely), and (b) produce the concrete miss counts quoted in the
motivating example (Figures 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.concrete import CacheStats, ConcreteCache
from repro.cache.config import CacheConfig
from repro.errors import SimulationError
from repro.frontend import CompiledProgram
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    BinOp,
    CallInstr,
    CondBranch,
    Const,
    Copy,
    Fence,
    Jump,
    Load,
    MemoryRef,
    Operand,
    Return,
    Store,
    Temp,
    UnOp,
)
from repro.ir.memory import MemoryBlock, MemoryLayout
from repro.speculation.config import SpeculationConfig
from repro.speculation.predictor import (
    BranchPredictor,
    OpposingPredictor,
    PerfectPredictor,
)

#: Default bound on interpreted instructions, to catch runaway loops.
DEFAULT_MAX_STEPS = 2_000_000


@dataclass(frozen=True)
class AccessRecord:
    """One dynamic memory access."""

    block_name: str
    instruction_index: int
    memory_block: MemoryBlock
    hit: bool
    speculative: bool


@dataclass
class SimulationResult:
    """Outcome of one concrete run."""

    stats: CacheStats
    steps: int = 0
    mispredictions: int = 0
    speculative_excursions: int = 0
    return_value: int | None = None
    accesses: list[AccessRecord] = field(default_factory=list)

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def observable_misses(self) -> int:
        return self.stats.observable_misses

    @property
    def hits(self) -> int:
        return self.stats.hits

    def non_speculative_accesses(self) -> list[AccessRecord]:
        return [record for record in self.accesses if not record.speculative]


class _Machine:
    """Mutable interpreter state (registers plus data memory values)."""

    def __init__(self, initializers: dict[str, list[int]], inputs: dict[str, int]):
        self.temps: dict[Temp, int] = {}
        self.scalars: dict[str, int] = dict(inputs)
        self.arrays: dict[tuple[str, int], int] = {}
        for name, values in initializers.items():
            for index, value in enumerate(values):
                self.arrays[(name, index)] = value

    def snapshot(self) -> tuple[dict, dict, dict]:
        return (dict(self.temps), dict(self.scalars), dict(self.arrays))

    def restore(self, snapshot: tuple[dict, dict, dict]) -> None:
        self.temps, self.scalars, self.arrays = (
            dict(snapshot[0]),
            dict(snapshot[1]),
            dict(snapshot[2]),
        )


class SpeculativeSimulator:
    """Interprets a compiled program with speculative execution."""

    def __init__(
        self,
        program: CompiledProgram,
        cache_config: CacheConfig | None = None,
        speculation: SpeculationConfig | None = None,
        predictor: BranchPredictor | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        record_accesses: bool = True,
        excursion_length: int | None = None,
    ):
        """``excursion_length`` overrides the bh/bm heuristic with an exact
        number of instructions speculated on every misprediction.  On real
        hardware the rollback point is determined by when the branch
        resolves (a timing accident); fixing it makes experiments such as
        the Figure 3 trace reproducible."""
        self.program = program
        self.cfg: CFG = program.cfg
        self.layout: MemoryLayout = program.layout
        self.cache_config = cache_config or CacheConfig.paper_default()
        self.speculation = speculation or SpeculationConfig.paper_default()
        self.predictor = predictor if predictor is not None else OpposingPredictor()
        self.max_steps = max_steps
        self.record_accesses = record_accesses
        self.excursion_length = excursion_length
        self._current_block_misses: set[MemoryBlock] = set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, inputs: dict[str, int] | None = None) -> SimulationResult:
        """Execute the program once with the given scalar inputs."""
        machine = _Machine(self.program.info.array_initializers, inputs or {})
        cache = ConcreteCache(config=self.cache_config)
        result = SimulationResult(stats=cache.stats)
        self.predictor.reset()

        block_name = self.cfg.entry
        while True:
            block = self.cfg.block(block_name)
            self._current_block_misses = set()
            for index, instruction in enumerate(block.instructions):
                self._step(result)
                self._execute(
                    instruction, machine, cache, result, block_name, index, speculative=False
                )
            terminator = block.terminator
            self._step(result)
            if isinstance(terminator, Return):
                result.return_value = (
                    self._value(terminator.value, machine) if terminator.value is not None else None
                )
                break
            if isinstance(terminator, Jump):
                block_name = terminator.target
                continue
            if isinstance(terminator, CondBranch):
                block_name = self._execute_branch(
                    block_name, terminator, machine, cache, result
                )
                continue
            raise SimulationError(f"block {block_name!r} has no terminator")
        result.stats = cache.stats
        return result

    # ------------------------------------------------------------------
    # Branches and speculation
    # ------------------------------------------------------------------
    def _execute_branch(
        self,
        block_name: str,
        terminator: CondBranch,
        machine: _Machine,
        cache: ConcreteCache,
        result: SimulationResult,
    ) -> str:
        actual_taken = self._value(terminator.cond, machine) != 0
        actual_target = terminator.true_target if actual_taken else terminator.false_target

        if isinstance(self.predictor, PerfectPredictor):
            return actual_target

        if self.speculation.disabled and self.excursion_length is None:
            # Speculation turned off entirely (depth 0): behave exactly like
            # a sequential machine — no predictor traffic, no misprediction
            # accounting, no excursion machinery.
            return actual_target

        if isinstance(self.predictor, OpposingPredictor):
            self.predictor.prime(actual_taken)
        predicted_taken = self.predictor.predict(block_name)
        self.predictor.update(block_name, actual_taken)

        if predicted_taken == actual_taken:
            return actual_target

        result.mispredictions += 1
        if self.excursion_length is not None:
            depth = self.excursion_length
        else:
            depth = self._speculation_depth(terminator, cache)
        if depth > 0:
            result.speculative_excursions += 1
            wrong_target = terminator.true_target if predicted_taken else terminator.false_target
            self._speculate(wrong_target, depth, machine, cache, result)
        return actual_target

    def _speculation_depth(self, terminator: CondBranch, cache: ConcreteCache) -> int:
        """If any load feeding the condition missed, the branch takes long to
        resolve and the excursion may run for ``bm`` instructions; otherwise
        it resolves quickly (``bh``)."""
        if not terminator.cond_refs:
            return self.speculation.depth_hit
        for ref in terminator.cond_refs:
            if self._ref_missed_in_current_block(ref, cache):
                return self.speculation.depth_miss
        return self.speculation.depth_hit

    def _ref_missed_in_current_block(self, ref: MemoryRef, cache: ConcreteCache) -> bool:
        access = self.layout.resolve(ref)
        if any(block in self._current_block_misses for block in access.blocks):
            return True
        return not all(cache.probe(block) for block in access.blocks)

    def _speculate(
        self,
        start_block: str,
        depth: int,
        machine: _Machine,
        cache: ConcreteCache,
        result: SimulationResult,
    ) -> None:
        """Execute up to ``depth`` instructions from ``start_block`` and roll
        back every architectural effect except the cache."""
        snapshot = machine.snapshot()
        block_name = start_block
        budget = depth
        while budget > 0:
            block = self.cfg.block(block_name)
            for index, instruction in enumerate(block.instructions):
                if budget <= 0:
                    break
                if isinstance(instruction, Fence):
                    # A fence stalls the pipeline until the mispredicted
                    # branch resolves; the excursion ends here, before the
                    # fence retires anything speculatively.
                    budget = 0
                    break
                budget -= 1
                self._step(result)
                self._execute(
                    instruction, machine, cache, result, block_name, index, speculative=True
                )
            if budget <= 0:
                break
            terminator = block.terminator
            budget -= 1
            self._step(result)
            if isinstance(terminator, Return):
                break
            if isinstance(terminator, Jump):
                block_name = terminator.target
            elif isinstance(terminator, CondBranch):
                # Nested speculation is not modelled: the excursion simply
                # follows the concrete outcome of the nested branch.
                taken = self._value(terminator.cond, machine) != 0
                block_name = terminator.true_target if taken else terminator.false_target
            else:  # pragma: no cover - defensive
                break
        machine.restore(snapshot)

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------
    def _execute(
        self,
        instruction,
        machine: _Machine,
        cache: ConcreteCache,
        result: SimulationResult,
        block_name: str,
        index: int,
        speculative: bool,
    ) -> None:
        if isinstance(instruction, Load):
            element = self._element_index(instruction.ref, instruction.index_operand, machine)
            value = self._read_memory(instruction.ref.symbol, element, machine)
            machine.temps[instruction.dest] = value
            self._touch(instruction.ref, element, cache, result, block_name, index, speculative)
        elif isinstance(instruction, Store):
            element = self._element_index(instruction.ref, instruction.index_operand, machine)
            value = self._value(instruction.value, machine)
            self._write_memory(instruction.ref.symbol, element, value, machine)
            self._touch(instruction.ref, element, cache, result, block_name, index, speculative)
        elif isinstance(instruction, BinOp):
            machine.temps[instruction.dest] = self._binop(
                instruction.op,
                self._value(instruction.left, machine),
                self._value(instruction.right, machine),
            )
        elif isinstance(instruction, UnOp):
            operand = self._value(instruction.operand, machine)
            machine.temps[instruction.dest] = self._unop(instruction.op, operand)
        elif isinstance(instruction, Copy):
            machine.temps[instruction.dest] = self._value(instruction.src, machine)
        elif isinstance(instruction, CallInstr):
            value = self._intrinsic(instruction.callee, [
                self._value(arg, machine) for arg in instruction.args
            ])
            if instruction.dest is not None:
                machine.temps[instruction.dest] = value
        elif isinstance(instruction, Fence):
            # Architecturally a no-op; its speculation-barrier effect is
            # enforced in _speculate, which never executes past a fence.
            pass

    def _touch(
        self,
        ref: MemoryRef,
        element: int,
        cache: ConcreteCache,
        result: SimulationResult,
        block_name: str,
        index: int,
        speculative: bool,
    ) -> None:
        obj = self.layout.object(ref.symbol)
        byte_offset = element * max(ref.element_size, 1)
        block_index = min(max(byte_offset // self.layout.line_size, 0), obj.num_blocks - 1)
        memory_block = MemoryBlock(ref.symbol, block_index)
        hit = cache.access(memory_block, speculative=speculative)
        if not hit and not speculative:
            self._current_block_misses.add(memory_block)
        if self.record_accesses:
            result.accesses.append(
                AccessRecord(
                    block_name=block_name,
                    instruction_index=index,
                    memory_block=memory_block,
                    hit=hit,
                    speculative=speculative,
                )
            )

    # ------------------------------------------------------------------
    # Values and memory
    # ------------------------------------------------------------------
    def _element_index(self, ref: MemoryRef, index_operand: Operand | None, machine: _Machine) -> int:
        if ref.index_const is not None:
            return ref.index_const
        if index_operand is not None:
            return self._value(index_operand, machine)
        return 0

    def _value(self, operand: Operand, machine: _Machine) -> int:
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, Temp):
            return machine.temps.get(operand, 0)
        raise SimulationError(f"cannot evaluate operand {operand!r}")

    def _read_memory(self, symbol: str, element: int, machine: _Machine) -> int:
        obj = self.layout.objects.get(symbol)
        if obj is not None and obj.symbol.is_array:
            return machine.arrays.get((symbol, element), 0)
        return machine.scalars.get(symbol, 0)

    def _write_memory(self, symbol: str, element: int, value: int, machine: _Machine) -> None:
        obj = self.layout.objects.get(symbol)
        if obj is not None and obj.symbol.is_array:
            machine.arrays[(symbol, element)] = value
        else:
            machine.scalars[symbol] = value

    @staticmethod
    def _binop(op: str, left: int, right: int) -> int:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return int(left / right) if right != 0 else 0
        if op == "%":
            return left - int(left / right) * right if right != 0 else 0
        if op == "<<":
            return left << (right & 63)
        if op == ">>":
            return left >> (right & 63)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "&&":
            return int(bool(left) and bool(right))
        if op == "||":
            return int(bool(left) or bool(right))
        raise SimulationError(f"unknown binary operator {op!r}")

    @staticmethod
    def _unop(op: str, operand: int) -> int:
        if op == "-":
            return -operand
        if op == "~":
            return ~operand
        if op == "!":
            return int(not operand)
        raise SimulationError(f"unknown unary operator {op!r}")

    @staticmethod
    def _intrinsic(name: str, args: list[int]) -> int:
        if name in ("my_abs", "abs") and args:
            return abs(args[0])
        if name == "min" and len(args) >= 2:
            return min(args[0], args[1])
        if name == "max" and len(args) >= 2:
            return max(args[0], args[1])
        if name in ("nondet", "input"):
            return 0
        return 0

    def _step(self, result: SimulationResult) -> None:
        result.steps += 1
        if result.steps > self.max_steps:
            raise SimulationError(
                f"simulation exceeded {self.max_steps} steps; the program may not terminate"
            )
