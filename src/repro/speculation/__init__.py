"""Speculative-execution substrate.

* :mod:`repro.speculation.config` — speculation parameters (the paper's
  ``bh``/``bm`` depth bounds, merge strategy, dynamic bounding switch).
* :mod:`repro.speculation.merge` — the four merge strategies of Figure 6.
* :mod:`repro.speculation.vcfg` — the virtual control flow: per-branch
  speculation *scenarios* (colors) describing the speculative window, the
  rollback edges, and the point at which the speculative state is merged
  back into the normal state.
* :mod:`repro.speculation.predictor` — branch predictors for the concrete
  simulator.
* :mod:`repro.speculation.simulator` — a concrete speculative executor
  with rollback over the concrete LRU cache; the repository's stand-in
  for the paper's GEM5 runs.
"""

from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy
from repro.speculation.predictor import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    PerfectPredictor,
)
from repro.speculation.vcfg import SpeculationScenario, VirtualCFG, build_vcfg
from repro.speculation.simulator import SimulationResult, SpeculativeSimulator

__all__ = [
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "MergeStrategy",
    "PerfectPredictor",
    "SimulationResult",
    "SpeculationConfig",
    "SpeculationScenario",
    "SpeculativeSimulator",
    "VirtualCFG",
    "build_vcfg",
]
