"""Speculation parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.speculation.merge import MergeStrategy


@dataclass(frozen=True)
class SpeculationConfig:
    """Parameters of the speculative-execution model.

    ``depth_miss`` (the paper's ``bm``) bounds the number of speculatively
    executed instructions when the branch condition's operands may miss in
    the cache; ``depth_hit`` (``bh``) applies when they are proven
    must-hits.  The paper derives 200 and 20 from GEM5 traces of the Alpha
    21264 O3 model; the same defaults are used here.
    """

    depth_miss: int = 200
    depth_hit: int = 20
    merge_strategy: MergeStrategy = MergeStrategy.JUST_IN_TIME
    dynamic_depth_bounding: bool = True
    use_shadow_state: bool = True

    def __post_init__(self) -> None:
        if self.depth_miss < 0 or self.depth_hit < 0:
            raise ConfigError("speculation depths must be non-negative")
        if self.depth_hit > self.depth_miss:
            raise ConfigError(
                "depth_hit must not exceed depth_miss "
                f"({self.depth_hit} > {self.depth_miss})"
            )

    @property
    def disabled(self) -> bool:
        """True when speculation is fully turned off (zero ``bm``, and
        therefore zero ``bh``): no excursion may execute any instruction,
        so speculative semantics degenerate to the sequential ones."""
        return self.depth_miss == 0

    @classmethod
    def paper_default(cls) -> "SpeculationConfig":
        """The configuration used in the paper's evaluation (Section 7)."""
        return cls(depth_miss=200, depth_hit=20, merge_strategy=MergeStrategy.JUST_IN_TIME)

    @classmethod
    def no_speculation(cls) -> "SpeculationConfig":
        """A degenerate configuration: zero speculation depth.

        Analyses run with it coincide with the non-speculative baseline,
        which is useful for differential testing.
        """
        return cls(depth_miss=0, depth_hit=0, dynamic_depth_bounding=False)

    def with_strategy(self, strategy: MergeStrategy) -> "SpeculationConfig":
        return SpeculationConfig(
            depth_miss=self.depth_miss,
            depth_hit=self.depth_hit,
            merge_strategy=strategy,
            dynamic_depth_bounding=self.dynamic_depth_bounding,
            use_shadow_state=self.use_shadow_state,
        )

    def with_depths(self, depth_miss: int, depth_hit: int | None = None) -> "SpeculationConfig":
        return SpeculationConfig(
            depth_miss=depth_miss,
            depth_hit=min(self.depth_hit if depth_hit is None else depth_hit, depth_miss),
            merge_strategy=self.merge_strategy,
            dynamic_depth_bounding=self.dynamic_depth_bounding,
            use_shadow_state=self.use_shadow_state,
        )
