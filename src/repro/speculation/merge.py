"""Merge strategies for speculative control flows (Figure 6 of the paper).

The strategies differ along two axes:

1. whether the speculative states produced at different *rollback points*
   are collapsed into a single state as soon as the rollback happens
   (``collapse_rollback_points``), and
2. where the speculative state is converted back into (merged with) the
   normal state: at the entry of the correct branch, or only at the
   control-flow merge point after the branch (``convert_at_merge_point``).

============================  ==========================  =======================
strategy                      rollback states collapsed?  converted into S at
============================  ==========================  =======================
``NO_MERGE``          (6a)    no                          merge point
``MERGE_AFTER_BRANCH`` (6b)   no                          merge point
``JUST_IN_TIME``       (6c)   yes                         merge point
``MERGE_AT_ROLLBACK``  (6d)   yes                         entry of correct branch
============================  ==========================  =======================

Note on granularity: the paper's Figure 6a distinguishes rollback points
per *instruction*; this implementation tracks them per *basic block*
(each block of the speculative window gets its own post-rollback state),
so ``NO_MERGE`` and ``MERGE_AFTER_BRANCH`` coincide here.  Both remain
sound over-approximations of Figure 6a, and the strategy the paper
recommends and evaluates (Just-in-Time merging, 6c) as well as the
baseline it is compared against in Table 6 (merge at rollback, 6d) are
modelled exactly.
"""

from __future__ import annotations

from enum import Enum


class MergeStrategy(Enum):
    """When to merge speculative states with each other and with the
    normal state."""

    NO_MERGE = "no_merge"
    MERGE_AFTER_BRANCH = "merge_after_branch"
    JUST_IN_TIME = "just_in_time"
    MERGE_AT_ROLLBACK = "merge_at_rollback"

    @property
    def collapse_rollback_points(self) -> bool:
        """True when all rollback points of a branch share one speculative
        state slot (Figures 6c and 6d)."""
        return self in (MergeStrategy.JUST_IN_TIME, MergeStrategy.MERGE_AT_ROLLBACK)

    @property
    def convert_at_merge_point(self) -> bool:
        """True when the speculative state is propagated through the correct
        branch and merged with the normal state only at the post-branch
        merge point (Figures 6a-6c); False for Figure 6d."""
        return self is not MergeStrategy.MERGE_AT_ROLLBACK

    @property
    def figure_label(self) -> str:
        return {
            MergeStrategy.NO_MERGE: "Figure 6a",
            MergeStrategy.MERGE_AFTER_BRANCH: "Figure 6b",
            MergeStrategy.JUST_IN_TIME: "Figure 6c",
            MergeStrategy.MERGE_AT_ROLLBACK: "Figure 6d",
        }[self]
