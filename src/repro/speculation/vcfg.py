"""Virtual control flow: the augmented CFG of Section 5.1.

For every conditional branch that may be speculatively executed we build
two *speculation scenarios* (the paper's "colors", Section 6.4): one in
which the processor mispredicts the branch as taken and speculatively
executes the true side before rolling back to the false side, and the
symmetric one.

A scenario captures, in one place, everything the lifted worklist
algorithm (Algorithm 2/3) needs:

* the *speculative window* — which blocks, and how many of their leading
  instructions, can execute speculatively within the depth bound.  Two
  windows are precomputed, one for the ``bm`` (condition may miss) bound
  and one for the ``bh`` (condition is a must hit) bound, so the dynamic
  depth-bounding optimisation of Section 6.2 is a constant-time switch;
* the *rollback target* — the entry block of the correct branch, where the
  speculative state re-enters the normal flow after the rollback
  (``vn_stop`` for the merge-at-rollback strategy);
* the *convergence block* — the post-branch merge point at which
  Just-in-Time merging converts the speculative state back into the
  normal state.

In terms of the paper's virtual nodes: injecting the scenario's state at
the branch block is ``vn_start``; the per-window-block rollback edges are
the dashed edges of Figure 6; the conversion at the rollback target or
convergence block is ``vn_stop``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.engine.cache import LRUCache
from repro.ir.cfg import CFG, diff_cfgs
from repro.ir.dominators import postdominator_tree
from repro.ir.instructions import CondBranch, Fence, MemoryRef
from repro.obs import metrics, span
from repro.speculation.config import SpeculationConfig


@dataclass(frozen=True)
class SpeculativeWindow:
    """The region of the CFG that may execute speculatively for one scenario.

    ``allowed`` maps a block name to the number of its leading
    instructions that fit within the depth bound; blocks outside the
    window are absent.
    """

    depth: int
    allowed: dict[str, int] = field(default_factory=dict)

    def contains(self, block: str) -> bool:
        return block in self.allowed

    def allowed_instructions(self, block: str) -> int:
        return self.allowed.get(block, 0)

    @property
    def num_blocks(self) -> int:
        return len(self.allowed)

    @property
    def num_instructions(self) -> int:
        return sum(self.allowed.values())


@dataclass(frozen=True)
class SpeculationScenario:
    """One speculative execution of one branch (one "color")."""

    color: int
    branch_block: str
    mispredicted_taken: bool
    wrong_target: str
    correct_target: str
    cond_refs: tuple[MemoryRef, ...]
    window_miss: SpeculativeWindow
    window_hit: SpeculativeWindow
    convergence_block: str | None

    def window(self, condition_must_hit: bool) -> SpeculativeWindow:
        """Pick the window according to the dynamic depth bound."""
        return self.window_hit if condition_must_hit else self.window_miss

    def describe(self) -> str:
        direction = "taken" if self.mispredicted_taken else "not-taken"
        return (
            f"scenario #{self.color}: branch {self.branch_block} mispredicted {direction}; "
            f"speculates into {self.wrong_target} "
            f"({self.window_miss.num_blocks} blocks / {self.window_miss.num_instructions} instrs at bm, "
            f"{self.window_hit.num_blocks} blocks / {self.window_hit.num_instructions} instrs at bh); "
            f"resumes at {self.correct_target}, converges at {self.convergence_block}"
        )


@dataclass
class VirtualCFG:
    """The CFG together with all its speculation scenarios."""

    cfg: CFG
    config: SpeculationConfig
    scenarios: list[SpeculationScenario] = field(default_factory=list)
    #: Lazily (re)built lookup indices; never compared or printed.  Only
    #: *appends* (how ``build_vcfg`` and tests grow the list) are detected
    #: lazily, via the length; any other mutation — replacing the list or
    #: editing elements in place — must call :meth:`invalidate_indices`.
    #: The contract is deliberately explicit rather than heuristic:
    #: identity-based detection is unsound under allocator address reuse.
    _by_color: dict[int, SpeculationScenario] = field(
        default_factory=dict, repr=False, compare=False
    )
    _by_branch: dict[str, list[SpeculationScenario]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _indexed_count: int = field(default=-1, repr=False, compare=False)

    @property
    def num_speculative_branches(self) -> int:
        """Number of conditional branches that can speculate at all
        (the paper's "#Branch" column counts these)."""
        return len({scenario.branch_block for scenario in self.scenarios})

    @property
    def num_virtual_edges(self) -> int:
        """Total number of rollback (virtual) edges under the ``bm`` bound.

        Counted at instruction granularity: a rollback may occur after any
        speculated instruction, so every instruction inside a scenario's
        window contributes one virtual edge.
        """
        return sum(scenario.window_miss.num_instructions for scenario in self.scenarios)

    def invalidate_indices(self) -> None:
        """Force an index rebuild on the next lookup.  Required after any
        mutation of ``scenarios`` other than appending — replacing the
        list, or editing elements in place."""
        self._indexed_count = -1

    def _refresh_indices(self) -> None:
        if self._indexed_count == len(self.scenarios):
            return
        self._by_color = {s.color: s for s in self.scenarios}
        by_branch: dict[str, list[SpeculationScenario]] = {}
        for scenario in self.scenarios:
            by_branch.setdefault(scenario.branch_block, []).append(scenario)
        self._by_branch = by_branch
        self._indexed_count = len(self.scenarios)

    def scenarios_at(self, branch_block: str) -> list[SpeculationScenario]:
        self._refresh_indices()
        return list(self._by_branch.get(branch_block, ()))

    def scenario(self, color: int) -> SpeculationScenario:
        """O(1) color lookup; raises :class:`KeyError` for unknown colors.

        This sits on the engine's inner loop (every window and resume slot
        at every block visit resolves its color), so it is dict-backed
        rather than the linear scan it used to be.
        """
        self._refresh_indices()
        try:
            return self._by_color[color]
        except KeyError:
            raise KeyError(color) from None

    def describe(self) -> str:
        lines = [
            f"virtual CFG for {self.cfg.name}: "
            f"{self.num_speculative_branches} speculative branches, "
            f"{len(self.scenarios)} scenarios, "
            f"{self.num_virtual_edges} virtual edges (bm={self.config.depth_miss})"
        ]
        lines.extend(scenario.describe() for scenario in self.scenarios)
        return "\n".join(lines)


def prune_vcfg(vcfg: "VirtualCFG", keep) -> list[SpeculationScenario]:
    """Drop the scenarios for which ``keep(scenario)`` is false; returns
    the removed scenarios (in their original order).

    Mutating ``vcfg.scenarios`` in place is safe against the construction
    memo: :func:`build_vcfg` returns a fresh wrapper with a fresh list per
    call, sharing only the frozen scenario values.  The lookup indices are
    invalidated, so later ``scenarios_at``/``scenario`` calls see the
    pruned view.
    """
    removed = [scenario for scenario in vcfg.scenarios if not keep(scenario)]
    if removed:
        vcfg.scenarios[:] = [
            scenario for scenario in vcfg.scenarios if keep(scenario)
        ]
        vcfg.invalidate_indices()
    return removed


# Scenario construction is deterministic in (cfg, config) and dominated
# by the per-scenario window searches, so the result is memoised: every
# engine construction over an already-seen (cfg, config) pair — repeat
# requests against a cached compile, the per-candidate engines of the
# mitigation searcher, differential benchmark runs — reuses the same
# frozen scenario objects.  Entries are keyed by *content fingerprint*
# rather than the old ``id(cfg)`` scheme, so re-parsing identical source
# (the common service pattern: CI resubmitting the same program, the
# mitigation loop re-emitting candidates) hits even though each parse
# allocates a fresh CFG object.  The content key also removes the need
# for weakref eviction — a bounded LRU caps residency instead, and a
# mutated CFG simply hashes to a different key.
_VCFG_MEMO_SIZE = 128
_vcfg_memo: LRUCache = LRUCache(maxsize=_VCFG_MEMO_SIZE)


def vcfg_memo_stats():
    """Hit/miss/eviction counters of the scenario memo (for stats surfaces)."""
    return _vcfg_memo.stats.snapshot()


def _compute_scenarios(
    cfg: CFG, config: SpeculationConfig
) -> tuple[SpeculationScenario, ...]:
    ipdom = postdominator_tree(cfg)
    scenarios: list[SpeculationScenario] = []
    color = 0
    for branch_block in cfg.conditional_blocks():
        terminator = cfg.block(branch_block).terminator
        assert isinstance(terminator, CondBranch)
        if terminator.true_target == terminator.false_target:
            continue
        convergence = ipdom.get(branch_block)
        for mispredicted_taken in (True, False):
            wrong = terminator.true_target if mispredicted_taken else terminator.false_target
            correct = terminator.false_target if mispredicted_taken else terminator.true_target
            scenarios.append(
                SpeculationScenario(
                    color=color,
                    branch_block=branch_block,
                    mispredicted_taken=mispredicted_taken,
                    wrong_target=wrong,
                    correct_target=correct,
                    cond_refs=terminator.cond_refs,
                    window_miss=compute_window(cfg, wrong, config.depth_miss),
                    window_hit=compute_window(cfg, wrong, config.depth_hit),
                    convergence_block=convergence,
                )
            )
            color += 1
    return tuple(scenarios)


def build_vcfg(
    cfg: CFG, config: SpeculationConfig, *, fingerprint: str | None = None
) -> VirtualCFG:
    """Construct the virtual CFG (all speculation scenarios) for ``cfg``.

    Memoised per (content fingerprint, config): repeat calls — including
    calls against a *re-parsed but identical* CFG — share the frozen
    :class:`SpeculationScenario` objects but always get a **fresh**
    :class:`VirtualCFG` wrapper with a fresh ``scenarios`` list, so
    callers that mutate the list (tests, the pre-PR benchmark reference)
    cannot corrupt each other or the memo.  Pass ``fingerprint`` when the
    caller has already computed ``cfg.content_fingerprint()``.
    """
    key = (fingerprint or cfg.content_fingerprint(), config)
    scenarios = _vcfg_memo.get(key)
    if scenarios is None:
        with span("vcfg", program=cfg.name) as vcfg_span:
            scenarios = _compute_scenarios(cfg, config)
            vcfg_span.set(scenarios=len(scenarios))
        _vcfg_memo.put(key, scenarios)
    else:
        # The phase still happened (served from the content-keyed memo);
        # traces that assert pipeline coverage rely on seeing it.
        with span("vcfg", program=cfg.name) as vcfg_span:
            vcfg_span.set(scenarios=len(scenarios), cached=True)
    return VirtualCFG(cfg=cfg, config=config, scenarios=list(scenarios))


@dataclass(frozen=True)
class VCFGBaseline:
    """What an incremental rebuild needs from a predecessor program.

    Holds fingerprints and frozen scenarios only — never the old CFG
    itself, so retaining a baseline does not keep a whole program alive.
    """

    block_fingerprints: dict[str, str]
    scenarios: tuple[SpeculationScenario, ...]


def _window_reusable(
    cfg: CFG, touched: frozenset[str], start: str, window: SpeculativeWindow
) -> bool:
    """May a baseline window be reused verbatim against the edited ``cfg``?

    Sound iff the edit cannot perturb the window's Dijkstra: distances and
    allowances only flow through the window's member blocks, and membership
    can only grow/shrink via a member or a block one edge beyond one (the
    depth/fence frontier).  So the window is reusable when the touched set
    is disjoint from ``{start} ∪ allowed ∪ successors(allowed)``.  The
    start block is included explicitly: a fence at its first instruction
    yields an *empty* window whose reusability still hinges on the start.
    """
    if start in touched:
        return False
    for name in window.allowed:
        if name in touched:
            return False
    for name in window.allowed:
        # Members are untouched, hence present in the new CFG with their
        # old terminators — successors are well-defined and unchanged.
        for successor in cfg.successors(name):
            if successor in touched:
                return False
    return True


def build_vcfg_incremental(
    cfg: CFG,
    config: SpeculationConfig,
    baseline: VCFGBaseline,
    *,
    fingerprint: str | None = None,
) -> tuple[VirtualCFG, dict[str, int]]:
    """Rebuild the virtual CFG for an edited program, reusing what stands.

    Scenario *structure* (colors, targets, convergence) is recomputed from
    the new CFG — it is cheap and depends on global block order and the
    postdominator tree.  The expensive per-scenario window searches are
    reused from ``baseline`` whenever the edit provably cannot have
    perturbed them (see :func:`_window_reusable`); only windows
    intersecting the edit are re-run.  The result is bit-identical to a
    cold :func:`build_vcfg` and is inserted into the same memo.

    Returns the vcfg plus reuse counters for observability.
    """
    key = (fingerprint or cfg.content_fingerprint(), config)
    memoised = _vcfg_memo.get(key)
    if memoised is not None:
        stats = {"windows_reused": 0, "windows_recomputed": 0, "memo_hit": 1}
        return VirtualCFG(cfg=cfg, config=config, scenarios=list(memoised)), stats

    diff = diff_cfgs(baseline.block_fingerprints, cfg)
    touched = diff.touched
    old_windows: dict[tuple[str, bool], tuple[SpeculativeWindow, SpeculativeWindow]] = {
        (s.branch_block, s.mispredicted_taken): (s.window_miss, s.window_hit)
        for s in baseline.scenarios
    }

    reused = 0
    recomputed = 0

    def window_pair(branch_block: str, taken: bool, wrong: str):
        nonlocal reused, recomputed
        pair = old_windows.get((branch_block, taken))
        windows = []
        for index, depth in enumerate((config.depth_miss, config.depth_hit)):
            old = pair[index] if pair is not None else None
            if (
                old is not None
                and old.depth == depth
                and _window_reusable(cfg, touched, wrong, old)
            ):
                windows.append(old)
                reused += 1
            else:
                windows.append(compute_window(cfg, wrong, depth))
                recomputed += 1
        return windows[0], windows[1]

    with span("vcfg.incremental", program=cfg.name) as vcfg_span:
        ipdom = postdominator_tree(cfg)
        scenarios: list[SpeculationScenario] = []
        color = 0
        for branch_block in cfg.conditional_blocks():
            terminator = cfg.block(branch_block).terminator
            assert isinstance(terminator, CondBranch)
            if terminator.true_target == terminator.false_target:
                continue
            convergence = ipdom.get(branch_block)
            for mispredicted_taken in (True, False):
                wrong = (
                    terminator.true_target
                    if mispredicted_taken
                    else terminator.false_target
                )
                correct = (
                    terminator.false_target
                    if mispredicted_taken
                    else terminator.true_target
                )
                window_miss, window_hit = window_pair(
                    branch_block, mispredicted_taken, wrong
                )
                scenarios.append(
                    SpeculationScenario(
                        color=color,
                        branch_block=branch_block,
                        mispredicted_taken=mispredicted_taken,
                        wrong_target=wrong,
                        correct_target=correct,
                        cond_refs=terminator.cond_refs,
                        window_miss=window_miss,
                        window_hit=window_hit,
                        convergence_block=convergence,
                    )
                )
                color += 1
        frozen = tuple(scenarios)
        vcfg_span.set(
            scenarios=len(frozen), windows_reused=reused, windows_recomputed=recomputed
        )
    _vcfg_memo.put(key, frozen)
    registry = metrics()
    registry.counter("incremental.windows_reused").inc(reused)
    registry.counter("incremental.windows_recomputed").inc(recomputed)
    stats = {"windows_reused": reused, "windows_recomputed": recomputed, "memo_hit": 0}
    return VirtualCFG(cfg=cfg, config=config, scenarios=list(frozen)), stats


def first_fence_index(cfg: CFG, block: str) -> int | None:
    """Index of the first :class:`Fence` in ``block`` (None when absent)."""
    for index, instruction in enumerate(cfg.block(block).instructions):
        if isinstance(instruction, Fence):
            return index
    return None


def compute_window(cfg: CFG, start: str, depth: int) -> SpeculativeWindow:
    """Blocks reachable from ``start`` within ``depth`` instructions.

    The distance of a block is the minimum number of instructions executed
    before reaching it from ``start``; its allowance is whatever remains of
    the budget.  Using the minimum distance is the sound direction: a block
    reachable within the budget along *any* path is included.

    A :class:`Fence` is a hard speculation barrier: a block containing one
    contributes at most its pre-fence prefix to the window and never
    extends the window into its successors (a fence at instruction 0
    excludes the block — and with it the whole scenario, when the block is
    the mispredicted target).
    """
    if depth <= 0:
        return SpeculativeWindow(depth=depth)
    # Dijkstra over block entry distances.  Edge weights (instruction
    # counts) are non-negative, so expanding blocks in distance order
    # settles each block's final distance the first time it is popped;
    # later (stale) heap entries for an already-improved block are
    # skipped.  This replaces the re-sort-the-whole-worklist-per-pop
    # schedule, which cost O(n² log n) on wide windows.
    distance: dict[str, int] = {start: 0}
    heap: list[tuple[int, str]] = [(0, start)]
    while heap:
        block_distance, block_name = heapq.heappop(heap)
        if block_distance > distance[block_name]:
            continue  # stale entry: a shorter path was found after the push
        if first_fence_index(cfg, block_name) is not None:
            # Speculation stalls at the fence until the branch resolves
            # and the excursion is squashed: successors are unreachable
            # speculatively through this block.
            continue
        exit_distance = block_distance + cfg.block(block_name).instruction_count
        if exit_distance >= depth:
            continue
        for successor in cfg.successors(block_name):
            if exit_distance < distance.get(successor, depth):
                distance[successor] = exit_distance
                heapq.heappush(heap, (exit_distance, successor))
    allowed: dict[str, int] = {}
    for name, dist in distance.items():
        if depth - dist <= 0:
            continue
        limit = cfg.block(name).instruction_count
        fence = first_fence_index(cfg, name)
        if fence is not None:
            limit = min(limit, fence)
        allowance = min(limit, depth - dist)
        if allowance > 0:
            allowed[name] = allowance
    return SpeculativeWindow(depth=depth, allowed=allowed)
