"""repro — Abstract Interpretation under Speculative Execution.

A from-scratch Python reproduction of Wu & Wang, *Abstract Interpretation
under Speculative Execution* (PLDI 2019): a static cache analysis
(must-hit, LRU) that remains sound when the processor speculatively
executes mispredicted branches, plus the two applications the paper
evaluates — execution-time estimation and timing side-channel detection.

Typical usage::

    from repro import compile_source
    from repro.analysis import analyze_baseline, analyze_speculative

    program = compile_source(SOURCE)
    non_spec = analyze_baseline(program)
    spec = analyze_speculative(program)

For request/response traffic — many programs, repeated configurations —
submit through the engine service layer instead::

    from repro import AnalysisEngine, AnalysisRequest

    engine = AnalysisEngine()
    results = engine.run_batch(
        [AnalysisRequest.speculative(source) for source in sources],
        max_workers=4,
    )
"""

from repro.frontend import CompiledProgram, compile_source
from repro.engine import AnalysisEngine, AnalysisKind, AnalysisRequest, default_engine

__version__ = "1.6.0"

__all__ = [
    "AnalysisEngine",
    "AnalysisKind",
    "AnalysisRequest",
    "CompiledProgram",
    "compile_source",
    "default_engine",
    "__version__",
]
