"""repro — Abstract Interpretation under Speculative Execution.

A from-scratch Python reproduction of Wu & Wang, *Abstract Interpretation
under Speculative Execution* (PLDI 2019): a static cache analysis
(must-hit, LRU) that remains sound when the processor speculatively
executes mispredicted branches, plus the two applications the paper
evaluates — execution-time estimation and timing side-channel detection.

Typical usage::

    from repro import compile_source
    from repro.analysis import analyze_baseline, analyze_speculative

    program = compile_source(SOURCE)
    non_spec = analyze_baseline(program)
    spec = analyze_speculative(program)
"""

from repro.frontend import CompiledProgram, compile_source

__version__ = "1.0.0"

__all__ = ["CompiledProgram", "compile_source", "__version__"]
