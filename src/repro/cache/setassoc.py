"""Per-set decomposition of the must-hit abstract domain.

A set-associative cache is, semantically, ``num_sets`` independent small
caches of ``ways`` lines each: an access to a block only touches the set
the block maps to, and replacement happens within that set.  The sound
abstraction is therefore the *product* of the single-set domain over all
sets — :class:`SetAssocCacheState` partitions blocks with the same
deterministic placement function the concrete simulator uses
(:mod:`repro.cache.placement`) and runs the existing age-bound domain
(:class:`~repro.cache.abstract.CacheState`, or the shadow-refined
:class:`~repro.cache.shadow.ShadowCacheState`) per set with
``num_lines = ways``.

Note this is *not* the fully-associative model restricted to fewer
lines: the fully-associative abstraction is **unsound** for
set-associative concrete caches, because it lets blocks of one set "age"
blocks of another — a direct-mapped cache conflict-misses two same-set
blocks that a 2-line fully-associative model happily proves both cached
(the counterexample in ``tests/test_setassoc.py``).

Index-unknown and secret-indexed accesses may touch any of the object's
blocks, hence any of the sets those blocks map to: each such set is aged
conservatively (no placeholder refinement — a placeholder's own set
placement says nothing about which set the real access falls in), while
sets the access provably cannot reach keep their bounds unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.abstract import AGE_INFINITY, CacheState
from repro.cache.config import CacheConfig
from repro.cache.placement import set_index
from repro.cache.shadow import ShadowCacheState
from repro.ir.memory import AccessKind, BlockAccess, MemoryBlock


@dataclass(frozen=True)
class SetAssocCacheState:
    """Product of per-set age-bound states, one per cache set.

    ``sets`` always has ``num_sets`` entries; entry ``i`` is the state of
    cache set ``i`` with ``ways`` lines.  All per-set states share the
    replacement ``policy``.  The wrapper carries its own ``is_bottom``
    flag (⊥ of the product is ⊥ in every component; keeping the flag here
    makes the join identity cheap to test).
    """

    num_sets: int
    ways: int
    sets: tuple
    is_bottom: bool = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, config: CacheConfig, use_shadow: bool = False) -> "SetAssocCacheState":
        """Entry state for ``config``: every set an empty cache."""
        per_set = cls._new_set_state(config.ways, config.policy, use_shadow)
        return cls(
            num_sets=config.num_sets,
            ways=config.ways,
            sets=tuple(per_set for _ in range(config.num_sets)),
        )

    @classmethod
    def bottom(cls, config: CacheConfig, use_shadow: bool = False) -> "SetAssocCacheState":
        flavour = ShadowCacheState if use_shadow else CacheState
        per_set = flavour.bottom(config.ways, policy=config.policy)
        return cls(
            num_sets=config.num_sets,
            ways=config.ways,
            sets=tuple(per_set for _ in range(config.num_sets)),
            is_bottom=True,
        )

    @staticmethod
    def _new_set_state(ways: int, policy: str, use_shadow: bool):
        flavour = ShadowCacheState if use_shadow else CacheState
        return flavour.empty(ways, policy=policy)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def policy(self) -> str:
        return self.sets[0].policy

    def set_of(self, block: MemoryBlock) -> int:
        return set_index(block, self.num_sets)

    def age(self, block: MemoryBlock) -> int:
        """Upper bound on the *within-set* age of ``block`` (1..ways, or
        :data:`AGE_INFINITY` when not guaranteed cached)."""
        if self.is_bottom:
            return AGE_INFINITY
        return self.sets[self.set_of(block)].age(block)

    def must_hit(self, block: MemoryBlock) -> bool:
        return not self.is_bottom and self.sets[self.set_of(block)].must_hit(block)

    def must_hit_access(self, access: BlockAccess) -> bool:
        if self.is_bottom:
            return False
        return all(self.must_hit(block) for block in access.blocks)

    def cached_blocks(self) -> set[MemoryBlock]:
        blocks: set[MemoryBlock] = set()
        if self.is_bottom:
            return blocks
        for state in self.sets:
            blocks |= state.cached_blocks()
        return blocks

    def __len__(self) -> int:
        return sum(len(state.cached_blocks()) for state in self.sets)

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def access(self, access: BlockAccess) -> "SetAssocCacheState":
        """Apply the transfer for one access to the set(s) it may touch."""
        if self.is_bottom:
            return self
        if access.kind is AccessKind.CONCRETE:
            return self.access_block(access.concrete_block)
        # Index-unknown (or secret-indexed) access: it resolves to exactly
        # one of access.blocks at run time, so exactly one of their sets
        # takes an access of unknown target; every such set must be aged
        # conservatively, the others provably keep their contents.
        targets: dict[int, list[MemoryBlock]] = {}
        for block in access.blocks:
            targets.setdefault(self.set_of(block), []).append(block)
        new_sets = list(self.sets)
        for index, blocks in targets.items():
            state = new_sets[index]
            if isinstance(state, ShadowCacheState):
                new_sets[index] = state.access_unknown(tuple(blocks))
            else:
                new_sets[index] = state.access_unknown()
        return SetAssocCacheState(
            num_sets=self.num_sets, ways=self.ways, sets=tuple(new_sets)
        )

    def access_block(self, block: MemoryBlock) -> "SetAssocCacheState":
        """Access a single statically known block (unit-test convenience)."""
        if self.is_bottom:
            return self
        index = self.set_of(block)
        return self._replace_set(index, self.sets[index].access_block(block))

    def _replace_set(self, index: int, state) -> "SetAssocCacheState":
        new_sets = list(self.sets)
        new_sets[index] = state
        return SetAssocCacheState(
            num_sets=self.num_sets, ways=self.ways, sets=tuple(new_sets)
        )

    # ------------------------------------------------------------------
    # Lattice operations (pointwise over sets)
    # ------------------------------------------------------------------
    def join(self, other: "SetAssocCacheState") -> "SetAssocCacheState":
        self._check_compatible(other)
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return SetAssocCacheState(
            num_sets=self.num_sets,
            ways=self.ways,
            sets=tuple(a.join(b) for a, b in zip(self.sets, other.sets)),
        )

    def widen(self, previous: "SetAssocCacheState") -> "SetAssocCacheState":
        self._check_compatible(previous)
        if previous.is_bottom or self.is_bottom:
            return self
        return SetAssocCacheState(
            num_sets=self.num_sets,
            ways=self.ways,
            sets=tuple(a.widen(b) for a, b in zip(self.sets, previous.sets)),
        )

    def leq(self, other: "SetAssocCacheState") -> bool:
        self._check_compatible(other)
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        return all(a.leq(b) for a, b in zip(self.sets, other.sets))

    def _check_compatible(self, other: "SetAssocCacheState") -> None:
        if (
            not isinstance(other, SetAssocCacheState)
            or self.num_sets != other.num_sets
            or self.ways != other.ways
        ):
            raise ValueError(
                f"incompatible set-associative states: "
                f"{self.num_sets}x{self.ways} vs "
                f"{getattr(other, 'num_sets', '?')}x{getattr(other, 'ways', '?')}"
            )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetAssocCacheState):
            return NotImplemented
        return (
            self.num_sets == other.num_sets
            and self.ways == other.ways
            and self.is_bottom == other.is_bottom
            and self.sets == other.sets
        )

    def __hash__(self) -> int:  # pragma: no cover - not hashed in hot paths
        return hash((self.num_sets, self.ways, self.is_bottom, self.sets))

    def __repr__(self) -> str:
        if self.is_bottom:
            return f"SetAssocCacheState(⊥, {self.num_sets}x{self.ways})"
        parts = ", ".join(
            f"s{index}={state!r}"
            for index, state in enumerate(self.sets)
            if state.cached_blocks()
        )
        return f"SetAssocCacheState({self.num_sets}x{self.ways}, {parts or 'empty'})"

    def describe(self) -> str:
        if self.is_bottom:
            return "⊥"
        return " | ".join(
            f"set{index}:{state.describe()}" for index, state in enumerate(self.sets)
        )
