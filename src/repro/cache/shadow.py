"""Refined abstract cache state with shadow variables (Section 6.3,
Appendix B).

In addition to the must-ages of :class:`~repro.cache.abstract.CacheState`
(upper bound on the age along *all* paths), this state tracks for every
block a *shadow* (may) age: a lower bound on the youngest position the
block may occupy along *some* path.  The shadow ages are used to refine
the aging rule: a block ``u`` only ages when enough distinct blocks could
actually be sitting in front of it (``NYoung(u) >= Age(u)``), which
prevents the spurious evictions illustrated in Figure 11 and fixed in
Figure 13.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.cache.abstract import AGE_INFINITY
from repro.ir.memory import AccessKind, BlockAccess, MemoryBlock, placeholder_blocks


@dataclass(frozen=True)
class ShadowCacheState:
    """Must-ages plus shadow (may) ages.

    ``must`` only stores blocks guaranteed cached (age <= num_lines);
    ``may`` only stores blocks that may be cached (shadow age <= num_lines).
    """

    num_lines: int
    must: dict[MemoryBlock, int] = field(default_factory=dict)
    may: dict[MemoryBlock, int] = field(default_factory=dict)
    is_bottom: bool = False
    policy: str = "lru"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_lines: int, policy: str = "lru") -> "ShadowCacheState":
        return cls(num_lines=num_lines, policy=policy)

    @classmethod
    def bottom(cls, num_lines: int, policy: str = "lru") -> "ShadowCacheState":
        return cls(num_lines=num_lines, is_bottom=True, policy=policy)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def age(self, block: MemoryBlock) -> int:
        if self.is_bottom:
            return AGE_INFINITY
        return self.must.get(block, AGE_INFINITY)

    def shadow_age(self, block: MemoryBlock) -> int:
        if self.is_bottom:
            return AGE_INFINITY
        return self.may.get(block, AGE_INFINITY)

    def must_hit(self, block: MemoryBlock) -> bool:
        return not self.is_bottom and block in self.must

    def must_hit_access(self, access: BlockAccess) -> bool:
        if self.is_bottom:
            return False
        return all(block in self.must for block in access.blocks)

    def cached_blocks(self) -> set[MemoryBlock]:
        return set(self.must)

    def may_cached_blocks(self) -> set[MemoryBlock]:
        return set(self.may)

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def access(self, access: BlockAccess) -> "ShadowCacheState":
        if self.is_bottom:
            return self
        if access.kind is AccessKind.CONCRETE:
            return self.access_block(access.concrete_block)
        if access.kind is AccessKind.SECRET:
            # Fully conservative: the side-channel verdict about this access
            # must never benefit from optimistic assumptions.
            return self.access_unknown(access.blocks)
        return self.access_unknown_array(access.symbol, access.blocks)

    def access_block(self, block: MemoryBlock) -> "ShadowCacheState":
        """Appendix B transfer for a statically known block (LRU), or the
        FIFO transfer: a guaranteed hit leaves a FIFO queue untouched; a
        possible miss may insert one new line at the front, so every must
        bound grows by one, the accessed block becomes resident with the
        weakest in-cache bound, and its shadow age drops to 1 (it may be
        the front insertion).  The NYoung refinement is LRU reasoning and
        is not applied to FIFO."""
        if self.is_bottom:
            return self
        if self.policy == "fifo":
            if block in self.must:
                return self
            new_must = {}
            for other, age in self.must.items():
                aged = age + 1
                if aged <= self.num_lines:
                    new_must[other] = aged
            new_must[block] = self.num_lines
            new_may = dict(self.may)
            new_may[block] = 1
            return ShadowCacheState(
                num_lines=self.num_lines,
                must=new_must,
                may=new_may,
                policy=self.policy,
            )
        old_must_age = self.age(block)
        old_shadow_age = self.shadow_age(block)

        # Step 1: update the shadow (may) component.  ``dict(d)`` clones at
        # C speed without re-hashing any key; only the entries that actually
        # age (shadow age <= the accessed block's old shadow age — none
        # when re-touching the youngest line, the hot case in loops) pay a
        # per-key update.  The accessed block's own entry is overwritten
        # with 1 at the end, which also undoes its aging-out, so the
        # result is exactly the rebuilt-from-scratch dict up to key order.
        new_may = dict(self.may)
        for other, shadow_age in self.may.items():
            if shadow_age <= old_shadow_age:
                aged = shadow_age + 1
                if aged <= self.num_lines:
                    new_may[other] = aged
                else:
                    del new_may[other]
        new_may[block] = 1

        # Step 2: update the must component using NYoung computed on the
        # *new* shadow ages.  NYoung(u) is "how many blocks may sit at age
        # <= Age(u)"; a sorted list of the new shadow ages turns each query
        # into a binary search instead of a scan over the whole may-set.
        # Only entries strictly younger than the accessed block's old must
        # age can change (the block's own entry is == old, never <), so the
        # clone-then-update shape applies here too.
        sorted_shadow_ages = sorted(new_may.values())
        new_must = dict(self.must)
        for other, must_age in self.must.items():
            if must_age < old_must_age:
                n_young = bisect_right(sorted_shadow_ages, must_age)
                if new_may.get(other, AGE_INFINITY) <= must_age:
                    n_young -= 1  # a block is never younger than itself
                if n_young >= must_age:
                    aged = must_age + 1
                    if aged <= self.num_lines:
                        new_must[other] = aged
                    else:
                        del new_must[other]
        new_must[block] = 1
        return ShadowCacheState(
            num_lines=self.num_lines, must=new_must, may=new_may, policy=self.policy
        )

    def access_unknown(self, candidate_blocks: tuple[MemoryBlock, ...]) -> "ShadowCacheState":
        """Access whose target is one of ``candidate_blocks`` but unknown.

        Must component: every bound grows by one (sound, as in the plain
        state).  May component: every candidate block may now be the
        youngest line, so its shadow age drops to 1 (this only ever makes
        ``NYoung`` larger, i.e. the refinement more conservative).
        """
        if self.is_bottom:
            return self
        new_must: dict[MemoryBlock, int] = {}
        for block, age in self.must.items():
            aged = age + 1
            if aged <= self.num_lines:
                new_must[block] = aged
        new_may = dict(self.may)
        for block in candidate_blocks:
            new_may[block] = 1
        return ShadowCacheState(
            num_lines=self.num_lines, must=new_must, may=new_may, policy=self.policy
        )

    def access_unknown_array(
        self, symbol: str, candidate_blocks: tuple[MemoryBlock, ...]
    ) -> "ShadowCacheState":
        """Unknown-index access using the Table-1 placeholder convention,
        refined with shadow-variable information.

        While unused placeholders remain, the access is modelled as loading
        the next placeholder line (a plain concrete-block transfer).  Once
        all placeholders are resident the access necessarily re-uses one of
        the array's existing lines, whose age is bounded by the oldest
        placeholder; a block ``u`` therefore only needs to age when it may
        actually be older than that line, i.e. when its shadow (may) age
        does not already exceed the bound.
        """
        if self.is_bottom:
            return self
        placeholders = placeholder_blocks(symbol, len(candidate_blocks))
        for placeholder in placeholders:
            if placeholder not in self.must:
                state = self.access_block(placeholder)
                new_may = dict(state.may)
                for block in candidate_blocks:
                    new_may[block] = 1
                return ShadowCacheState(
                    num_lines=self.num_lines,
                    must=dict(state.must),
                    may=new_may,
                    policy=self.policy,
                )
        if self.policy == "fifo":
            # The age-bound refinement below reasons about LRU aging (a
            # block only ages when a younger line is inserted in front of
            # it); under FIFO fall back to the plain conservative rule.
            return self.access_unknown(candidate_blocks)
        bound = max(self.must[placeholder] for placeholder in placeholders)
        placeholder_set = set(placeholders)
        new_must = dict(self.must)
        for block, age in self.must.items():
            if block in placeholder_set:
                # The array's own footprint does not grow by re-accessing it;
                # keeping the placeholder bounds is what lets Table 1's loop
                # converge with decis_lev[1*]/[2*] still resident.
                continue
            if self.may.get(block, AGE_INFINITY) > bound:
                continue
            aged = age + 1
            if aged <= self.num_lines:
                new_must[block] = aged
            else:
                del new_must[block]
        new_may = dict(self.may)
        for block in candidate_blocks:
            new_may[block] = 1
        return ShadowCacheState(
            num_lines=self.num_lines, must=new_must, may=new_may, policy=self.policy
        )

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def join(self, other: "ShadowCacheState") -> "ShadowCacheState":
        """Must: pointwise max (intersection).  May: pointwise min (union)."""
        self._check_compatible(other)
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        new_must: dict[MemoryBlock, int] = {}
        for block, age in self.must.items():
            other_age = other.must.get(block)
            if other_age is not None:
                new_must[block] = max(age, other_age)
        new_may: dict[MemoryBlock, int] = dict(other.may)
        for block, age in self.may.items():
            existing = new_may.get(block)
            new_may[block] = age if existing is None else min(age, existing)
        return ShadowCacheState(
            num_lines=self.num_lines, must=new_must, may=new_may, policy=self.policy
        )

    def widen(self, previous: "ShadowCacheState") -> "ShadowCacheState":
        """Widen the must component (growing ages jump to infinity); the may
        component is kept as-is — its lattice is finite, so convergence
        does not depend on widening it."""
        self._check_compatible(previous)
        if previous.is_bottom or self.is_bottom:
            return self
        new_must: dict[MemoryBlock, int] = {}
        for block, age in self.must.items():
            previous_age = previous.must.get(block)
            if previous_age is None:
                new_must[block] = age
            elif age > previous_age:
                continue
            else:
                new_must[block] = age
        return ShadowCacheState(
            num_lines=self.num_lines,
            must=new_must,
            may=dict(self.may),
            policy=self.policy,
        )

    def leq(self, other: "ShadowCacheState") -> bool:
        self._check_compatible(other)
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        for block, other_age in other.must.items():
            if self.must.get(block, AGE_INFINITY) > other_age:
                return False
        for block, age in self.may.items():
            if other.may.get(block, AGE_INFINITY) > age:
                return False
        return True

    def _check_compatible(self, other: "ShadowCacheState") -> None:
        if self.num_lines != other.num_lines or self.policy != other.policy:
            raise ValueError(
                "incompatible cache states: "
                f"{self.num_lines} lines/{self.policy} vs "
                f"{other.num_lines} lines/{other.policy}"
            )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShadowCacheState):
            return NotImplemented
        return (
            self.num_lines == other.num_lines
            and self.is_bottom == other.is_bottom
            and self.policy == other.policy
            and self.must == other.must
            and self.may == other.may
        )

    def __hash__(self) -> int:  # pragma: no cover
        return hash(
            (
                self.num_lines,
                self.is_bottom,
                self.policy,
                frozenset(self.must.items()),
                frozenset(self.may.items()),
            )
        )

    def __repr__(self) -> str:
        if self.is_bottom:
            return f"ShadowCacheState(⊥, {self.num_lines} lines)"
        must = ", ".join(f"{b}:{a}" for b, a in sorted(self.must.items(), key=lambda i: (i[1], str(i[0]))))
        may = ", ".join(f"∃{b}:{a}" for b, a in sorted(self.may.items(), key=lambda i: (i[1], str(i[0]))))
        return f"ShadowCacheState(must={{{must}}}, may={{{may}}})"

    def describe(self) -> str:
        """A Table-1-style listing of the must component, youngest first."""
        if self.is_bottom:
            return "⊥"
        ordered = sorted(self.must.items(), key=lambda item: (item[1], str(item[0])))
        return "{" + ", ".join(f"{block}@{age}" for block, age in ordered) + "}"
