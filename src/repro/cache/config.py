"""Cache configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of the modelled data cache.

    The paper's evaluation platform is an Alpha 21264-style 32-KB data
    cache: 512 lines of 64 bytes, fully associative, LRU replacement —
    which is the default here.  ``associativity=None`` means fully
    associative; the abstract analysis always models the cache as fully
    associative (a sound choice the paper also makes), while the concrete
    simulator honours set associativity when it is given.
    """

    num_lines: int = 512
    line_size: int = 64
    associativity: int | None = None
    hit_latency: int = 2
    miss_penalty: int = 100

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ConfigError(f"num_lines must be positive, got {self.num_lines}")
        if self.line_size <= 0:
            raise ConfigError(f"line_size must be positive, got {self.line_size}")
        if self.associativity is not None:
            if self.associativity <= 0:
                raise ConfigError(
                    f"associativity must be positive, got {self.associativity}"
                )
            if self.num_lines % self.associativity != 0:
                raise ConfigError(
                    "num_lines must be a multiple of associativity "
                    f"({self.num_lines} % {self.associativity} != 0)"
                )
        if self.hit_latency < 0 or self.miss_penalty < 0:
            raise ConfigError("latencies must be non-negative")

    @property
    def size_bytes(self) -> int:
        return self.num_lines * self.line_size

    @property
    def num_sets(self) -> int:
        if self.associativity is None:
            return 1
        return self.num_lines // self.associativity

    @property
    def ways(self) -> int:
        return self.num_lines if self.associativity is None else self.associativity

    @classmethod
    def paper_default(cls) -> "CacheConfig":
        """The configuration used throughout the paper's evaluation."""
        return cls(num_lines=512, line_size=64, associativity=None)

    @classmethod
    def small(cls, num_lines: int = 4, line_size: int = 64) -> "CacheConfig":
        """A tiny cache, handy for unit tests and the paper's figures."""
        return cls(num_lines=num_lines, line_size=line_size, associativity=None)
