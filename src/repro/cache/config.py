"""Cache configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Replacement policies understood by both the concrete simulator and the
#: abstract domain.  ``lru`` refreshes a line's position on every hit;
#: ``fifo`` (round-robin) keeps the insertion order — a hit does not
#: refresh the line, so even hot lines are eventually evicted.
REPLACEMENT_POLICIES = ("lru", "fifo")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of the modelled data cache.

    The paper's evaluation platform is an Alpha 21264-style 32-KB data
    cache: 512 lines of 64 bytes, fully associative, LRU replacement —
    which is the default here.  ``associativity=None`` means fully
    associative.

    Geometry is honoured on *both* sides of the soundness argument: the
    concrete simulator keeps one replacement list per set, and the
    abstract analysis runs the age-bound domain per set (with
    ``ways`` lines each) over the same deterministic set-placement
    function (:mod:`repro.cache.placement`).  Note that modelling a
    set-associative cache as fully associative would **not** be a sound
    shortcut for the must-analysis: two blocks that conflict in a small
    set can evict each other while a fully-associative model still
    promises both are cached (see ``tests/test_setassoc.py`` for the
    direct-mapped counterexample).
    """

    num_lines: int = 512
    line_size: int = 64
    associativity: int | None = None
    hit_latency: int = 2
    miss_penalty: int = 100
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ConfigError(f"num_lines must be positive, got {self.num_lines}")
        if self.line_size <= 0:
            raise ConfigError(f"line_size must be positive, got {self.line_size}")
        if self.associativity is not None:
            if self.associativity <= 0:
                raise ConfigError(
                    f"associativity must be positive, got {self.associativity}"
                )
            if self.num_lines % self.associativity != 0:
                raise ConfigError(
                    "num_lines must be a multiple of associativity "
                    f"({self.num_lines} % {self.associativity} != 0)"
                )
        if self.policy not in REPLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown replacement policy {self.policy!r}; "
                f"expected one of {REPLACEMENT_POLICIES}"
            )
        if self.hit_latency < 0 or self.miss_penalty < 0:
            raise ConfigError("latencies must be non-negative")

    @property
    def size_bytes(self) -> int:
        return self.num_lines * self.line_size

    @property
    def num_sets(self) -> int:
        if self.associativity is None:
            return 1
        return self.num_lines // self.associativity

    @property
    def ways(self) -> int:
        return self.num_lines if self.associativity is None else self.associativity

    @property
    def is_fully_associative(self) -> bool:
        return self.num_sets == 1

    def describe(self) -> str:
        """Short human-readable geometry/policy summary."""
        ways = (
            "fully associative"
            if self.associativity is None
            else f"{self.associativity}-way ({self.num_sets} sets)"
        )
        return (
            f"{self.num_lines} x {self.line_size} B lines, "
            f"{ways}, {self.policy.upper()}"
        )

    @classmethod
    def paper_default(cls) -> "CacheConfig":
        """The configuration used throughout the paper's evaluation."""
        return cls(num_lines=512, line_size=64, associativity=None)

    @classmethod
    def small(
        cls,
        num_lines: int = 4,
        line_size: int = 64,
        associativity: int | None = None,
        policy: str = "lru",
    ) -> "CacheConfig":
        """A tiny cache, handy for unit tests and the paper's figures."""
        return cls(
            num_lines=num_lines,
            line_size=line_size,
            associativity=associativity,
            policy=policy,
        )
