"""Concrete LRU cache simulator.

This is the ground-truth model used by the speculative execution
simulator (the repository's GEM5 substitute) and by the soundness tests:
the abstract must-hit analysis may never claim a hit for an access that
misses in any concrete execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import CacheConfig
from repro.cache.placement import set_index
from repro.ir.memory import MemoryBlock


@dataclass
class CacheStats:
    """Hit/miss counters, split by whether the access was speculative."""

    hits: int = 0
    misses: int = 0
    speculative_hits: int = 0
    speculative_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def observable_misses(self) -> int:
        """Misses visible to an outside observer (non-speculative ones).

        Speculative misses overlap with the branch-resolution latency and
        are therefore "masked by the pipeline" in the paper's wording.
        """
        return self.misses - self.speculative_misses

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            speculative_hits=self.speculative_hits + other.speculative_hits,
            speculative_misses=self.speculative_misses + other.speculative_misses,
        )


@dataclass
class ConcreteCache:
    """A set-associative (or fully associative) cache of memory blocks.

    Replacement within each set follows ``config.policy``: ``lru``
    refreshes a line's position on every hit, ``fifo`` keeps pure
    insertion order (a hit does not touch the queue).
    """

    config: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self) -> None:
        # One replacement list per set; index 0 is the youngest entry
        # (most recently used under LRU, most recently inserted under FIFO).
        self._sets: list[list[MemoryBlock]] = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _set_index(self, block: MemoryBlock) -> int:
        # Deterministic placement shared with the abstract per-set domain;
        # builtin hash() would change with PYTHONHASHSEED and make
        # set-associative runs irreproducible across processes.
        return set_index(block, self.config.num_sets)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, block: MemoryBlock, speculative: bool = False) -> bool:
        """Access ``block``; return True on a hit.

        The update is identical for loads and stores (write-allocate).
        Speculative accesses update the cache exactly like normal ones —
        that is the whole point of the paper — but are counted separately.
        """
        lines = self._sets[self._set_index(block)]
        hit = block in lines
        if hit:
            if self.config.policy == "lru":
                lines.remove(block)
                lines.insert(0, block)
            # FIFO: a hit leaves the insertion order untouched.
            self.stats.hits += 1
            if speculative:
                self.stats.speculative_hits += 1
        else:
            lines.insert(0, block)
            if len(lines) > self.config.ways:
                lines.pop()
            self.stats.misses += 1
            if speculative:
                self.stats.speculative_misses += 1
        return hit

    def probe(self, block: MemoryBlock) -> bool:
        """Return whether ``block`` is currently cached, without updating LRU."""
        return block in self._sets[self._set_index(block)]

    def age_of(self, block: MemoryBlock) -> int | None:
        """Return the *within-set* age (1 = youngest) of ``block``, or
        None if absent.

        The age is the block's position in its own set's replacement
        order, bounded by ``config.ways`` — exactly the quantity the
        per-set abstract domain bounds, for every geometry.  It is *not*
        a global recency rank: two blocks in different sets have
        incomparable ages.  Soundness checks must compare it against the
        abstract state's (equally per-set) age of the same block only.
        """
        lines = self._sets[self._set_index(block)]
        try:
            return lines.index(block) + 1
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contents(self) -> list[MemoryBlock]:
        """All cached blocks, youngest first within each set."""
        blocks: list[MemoryBlock] = []
        for lru in self._sets:
            blocks.extend(lru)
        return blocks

    @property
    def occupancy(self) -> int:
        return sum(len(lru) for lru in self._sets)

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def clear(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.reset_stats()

    def clone(self) -> "ConcreteCache":
        """Deep copy (used by tests to compare what-if scenarios)."""
        copy = ConcreteCache(config=self.config)
        copy._sets = [list(lru) for lru in self._sets]
        copy.stats = CacheStats(
            hits=self.stats.hits,
            misses=self.stats.misses,
            speculative_hits=self.stats.speculative_hits,
            speculative_misses=self.stats.speculative_misses,
        )
        return copy
