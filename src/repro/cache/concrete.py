"""Concrete LRU cache simulator.

This is the ground-truth model used by the speculative execution
simulator (the repository's GEM5 substitute) and by the soundness tests:
the abstract must-hit analysis may never claim a hit for an access that
misses in any concrete execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import CacheConfig
from repro.ir.memory import MemoryBlock


@dataclass
class CacheStats:
    """Hit/miss counters, split by whether the access was speculative."""

    hits: int = 0
    misses: int = 0
    speculative_hits: int = 0
    speculative_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def observable_misses(self) -> int:
        """Misses visible to an outside observer (non-speculative ones).

        Speculative misses overlap with the branch-resolution latency and
        are therefore "masked by the pipeline" in the paper's wording.
        """
        return self.misses - self.speculative_misses

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            speculative_hits=self.speculative_hits + other.speculative_hits,
            speculative_misses=self.speculative_misses + other.speculative_misses,
        )


@dataclass
class ConcreteCache:
    """A set-associative (or fully associative) LRU cache of memory blocks."""

    config: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self) -> None:
        # One LRU list per set; index 0 is the most recently used entry.
        self._sets: list[list[MemoryBlock]] = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _set_index(self, block: MemoryBlock) -> int:
        if self.config.num_sets == 1:
            return 0
        return hash((block.symbol, block.index)) % self.config.num_sets

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, block: MemoryBlock, speculative: bool = False) -> bool:
        """Access ``block``; return True on a hit.

        The update is identical for loads and stores (write-allocate).
        Speculative accesses update the cache exactly like normal ones —
        that is the whole point of the paper — but are counted separately.
        """
        lru = self._sets[self._set_index(block)]
        hit = block in lru
        if hit:
            lru.remove(block)
            lru.insert(0, block)
            self.stats.hits += 1
            if speculative:
                self.stats.speculative_hits += 1
        else:
            lru.insert(0, block)
            if len(lru) > self.config.ways:
                lru.pop()
            self.stats.misses += 1
            if speculative:
                self.stats.speculative_misses += 1
        return hit

    def probe(self, block: MemoryBlock) -> bool:
        """Return whether ``block`` is currently cached, without updating LRU."""
        return block in self._sets[self._set_index(block)]

    def age_of(self, block: MemoryBlock) -> int | None:
        """Return the LRU age (1 = youngest) of ``block`` or None if absent.

        Only meaningful for fully associative configurations, where it is
        directly comparable with the abstract state's ages.
        """
        lru = self._sets[self._set_index(block)]
        try:
            return lru.index(block) + 1
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contents(self) -> list[MemoryBlock]:
        """All cached blocks, youngest first within each set."""
        blocks: list[MemoryBlock] = []
        for lru in self._sets:
            blocks.extend(lru)
        return blocks

    @property
    def occupancy(self) -> int:
        return sum(len(lru) for lru in self._sets)

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def clear(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.reset_stats()

    def clone(self) -> "ConcreteCache":
        """Deep copy (used by tests to compare what-if scenarios)."""
        copy = ConcreteCache(config=self.config)
        copy._sets = [list(lru) for lru in self._sets]
        copy.stats = CacheStats(
            hits=self.stats.hits,
            misses=self.stats.misses,
            speculative_hits=self.stats.speculative_hits,
            speculative_misses=self.stats.speculative_misses,
        )
        return copy
