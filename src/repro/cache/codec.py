"""Compact, versioned binary serialization of abstract cache states.

Abstract states cross process boundaries in two places: the
scenario-sharded fixpoint's process backend ships normal-state deltas to
its workers every outer round (:mod:`repro.analysis.multicolor`), and the
tier-2 :class:`~repro.service.store.ResultStore` persists results whose
``entry_states`` are abstract states.  Pickling the object graph pays for
class dispatch, per-entry :class:`~repro.ir.memory.MemoryBlock` instances
and repeated symbol strings on every entry; this codec instead writes a
*symbol-interned varint format*:

* one header (magic + format version + payload tag) per blob;
* one symbol table per blob — each distinct symbol name is written once
  and referenced by index, which is what makes encoding a whole
  block → state *map* (the shard-delta shape) dramatically smaller than
  per-state pickles: programs reuse the same few dozen symbols in every
  state;
* ages, block indices, geometry and counts as LEB128 varints (block
  indices zigzag-encoded: placeholder lines are negative).

All three state flavours are supported — the flat
:class:`~repro.cache.abstract.CacheState`, the shadow-refined
:class:`~repro.cache.shadow.ShadowCacheState`, and the per-set product
:class:`~repro.cache.setassoc.SetAssocCacheState` wrapping either — for
every geometry and replacement policy.  ``decode_state(encode_state(s))``
is guaranteed equal to ``s`` (entries are written in sorted block order,
so decoded dict ordering is canonical and deterministic).

The format is versioned: a blob written under a different
:data:`CODEC_VERSION`, a foreign magic, an unknown tag, or trailing bytes
all raise :class:`CodecError` — readers never guess.
"""

from __future__ import annotations

from typing import Mapping

from repro.cache.abstract import CacheState
from repro.cache.shadow import ShadowCacheState
from repro.cache.setassoc import SetAssocCacheState
from repro.ir.memory import MemoryBlock

#: Leading bytes of every codec blob.
MAGIC = b"RSC"

#: Bump whenever the byte layout changes incompatibly.  Decoders reject
#: every other version outright (the persistent store and the shard wire
#: both prefer recomputation over misinterpretation).
CODEC_VERSION = 1

#: Payload tags (one state vs a block-name → state map).
_TAG_STATE = 0x01
_TAG_STATE_MAP = 0x02

#: State-kind tags.
_KIND_FLAT = 0x01      # CacheState
_KIND_SHADOW = 0x02    # ShadowCacheState
_KIND_SETASSOC = 0x03  # SetAssocCacheState

_POLICY_TO_TAG = {"lru": 0, "fifo": 1}
_TAG_TO_POLICY = {tag: policy for policy, tag in _POLICY_TO_TAG.items()}

_FLAG_BOTTOM = 0x01


class CodecError(ValueError):
    """Raised for blobs this codec version cannot (or must not) decode."""


# ----------------------------------------------------------------------
# Varint primitives
# ----------------------------------------------------------------------
def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError(f"cannot encode negative varint {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ----------------------------------------------------------------------
# Symbol interning
# ----------------------------------------------------------------------
class _SymbolTable:
    """Order-of-first-use string interning shared across one blob."""

    def __init__(self) -> None:
        self.symbols: list[str] = []
        self._index: dict[str, int] = {}

    def intern(self, symbol: str) -> int:
        index = self._index.get(symbol)
        if index is None:
            index = len(self.symbols)
            self._index[symbol] = index
            self.symbols.append(symbol)
        return index

    def emit(self, out: bytearray) -> None:
        _write_uvarint(out, len(self.symbols))
        for symbol in self.symbols:
            encoded = symbol.encode("utf-8")
            _write_uvarint(out, len(encoded))
            out.extend(encoded)

    @staticmethod
    def parse(data: bytes, pos: int) -> tuple[list[str], int]:
        count, pos = _read_uvarint(data, pos)
        symbols: list[str] = []
        for _ in range(count):
            length, pos = _read_uvarint(data, pos)
            if pos + length > len(data):
                raise CodecError("truncated symbol table")
            symbols.append(data[pos : pos + length].decode("utf-8"))
            pos += length
        return symbols, pos


# ----------------------------------------------------------------------
# Age maps (the {MemoryBlock: age} payload shared by all flavours)
# ----------------------------------------------------------------------
def _emit_age_map(out: bytearray, ages: Mapping[MemoryBlock, int], table: _SymbolTable) -> None:
    _write_uvarint(out, len(ages))
    # Sorted block order makes the encoding canonical: equal states encode
    # to equal bytes, and decoded dict order is deterministic.
    for block in sorted(ages):
        _write_uvarint(out, table.intern(block.symbol))
        _write_uvarint(out, _zigzag(block.index))
        _write_uvarint(out, ages[block])


def _parse_age_map(data: bytes, pos: int, symbols: list[str]) -> tuple[dict[MemoryBlock, int], int]:
    count, pos = _read_uvarint(data, pos)
    ages: dict[MemoryBlock, int] = {}
    for _ in range(count):
        sym_index, pos = _read_uvarint(data, pos)
        try:
            symbol = symbols[sym_index]
        except IndexError:
            raise CodecError(f"symbol index {sym_index} out of range") from None
        raw_index, pos = _read_uvarint(data, pos)
        age, pos = _read_uvarint(data, pos)
        ages[MemoryBlock(symbol, _unzigzag(raw_index))] = age
    return ages, pos


# ----------------------------------------------------------------------
# State bodies (header-less; symbol table supplied by the caller)
# ----------------------------------------------------------------------
def _emit_flat_maps(out: bytearray, state, table: _SymbolTable) -> None:
    """The per-flavour age map(s) of one flat (single-set) state."""
    if isinstance(state, ShadowCacheState):
        _emit_age_map(out, state.must, table)
        _emit_age_map(out, state.may, table)
    else:
        _emit_age_map(out, state.ages, table)


def _emit_state_body(out: bytearray, state, table: _SymbolTable) -> None:
    if isinstance(state, SetAssocCacheState):
        inner = state.sets[0]
        out.append(_KIND_SETASSOC)
        out.append(_KIND_SHADOW if isinstance(inner, ShadowCacheState) else _KIND_FLAT)
        out.append(_POLICY_TO_TAG[inner.policy])
        out.append(_FLAG_BOTTOM if state.is_bottom else 0)
        _write_uvarint(out, state.num_sets)
        _write_uvarint(out, state.ways)
        for per_set in state.sets:
            out.append(_FLAG_BOTTOM if per_set.is_bottom else 0)
            _emit_flat_maps(out, per_set, table)
        return
    if isinstance(state, ShadowCacheState):
        out.append(_KIND_SHADOW)
    elif isinstance(state, CacheState):
        out.append(_KIND_FLAT)
    else:
        raise CodecError(f"cannot encode {type(state).__name__}")
    out.append(_POLICY_TO_TAG[state.policy])
    out.append(_FLAG_BOTTOM if state.is_bottom else 0)
    _write_uvarint(out, state.num_lines)
    _emit_flat_maps(out, state, table)


def _parse_flat_state(
    data: bytes, pos: int, symbols: list[str], kind: int, policy: str,
    bottom: bool, num_lines: int,
):
    if kind == _KIND_SHADOW:
        must, pos = _parse_age_map(data, pos, symbols)
        may, pos = _parse_age_map(data, pos, symbols)
        return (
            ShadowCacheState(
                num_lines=num_lines, must=must, may=may,
                is_bottom=bottom, policy=policy,
            ),
            pos,
        )
    ages, pos = _parse_age_map(data, pos, symbols)
    return (
        CacheState(num_lines=num_lines, ages=ages, is_bottom=bottom, policy=policy),
        pos,
    )


def _parse_state_body(data: bytes, pos: int, symbols: list[str]):
    if pos >= len(data):
        raise CodecError("truncated state body")
    kind = data[pos]
    pos += 1
    if kind == _KIND_SETASSOC:
        if pos + 3 > len(data):
            raise CodecError("truncated set-associative header")
        inner_kind = data[pos]
        policy_tag = data[pos + 1]
        flags = data[pos + 2]
        pos += 3
        if inner_kind not in (_KIND_FLAT, _KIND_SHADOW):
            raise CodecError(f"unknown per-set state kind 0x{inner_kind:02x}")
        policy = _TAG_TO_POLICY.get(policy_tag)
        if policy is None:
            raise CodecError(f"unknown policy tag 0x{policy_tag:02x}")
        num_sets, pos = _read_uvarint(data, pos)
        ways, pos = _read_uvarint(data, pos)
        if num_sets <= 0:
            raise CodecError("set-associative state needs at least one set")
        sets = []
        for _ in range(num_sets):
            if pos >= len(data):
                raise CodecError("truncated per-set state")
            set_bottom = bool(data[pos] & _FLAG_BOTTOM)
            pos += 1
            per_set, pos = _parse_flat_state(
                data, pos, symbols, inner_kind, policy, set_bottom, ways
            )
            sets.append(per_set)
        return (
            SetAssocCacheState(
                num_sets=num_sets, ways=ways, sets=tuple(sets),
                is_bottom=bool(flags & _FLAG_BOTTOM),
            ),
            pos,
        )
    if kind not in (_KIND_FLAT, _KIND_SHADOW):
        raise CodecError(f"unknown state kind 0x{kind:02x}")
    if pos + 2 > len(data):
        raise CodecError("truncated state header")
    policy = _TAG_TO_POLICY.get(data[pos])
    if policy is None:
        raise CodecError(f"unknown policy tag 0x{data[pos]:02x}")
    bottom = bool(data[pos + 1] & _FLAG_BOTTOM)
    pos += 2
    num_lines, pos = _read_uvarint(data, pos)
    return _parse_flat_state(data, pos, symbols, kind, policy, bottom, num_lines)


# ----------------------------------------------------------------------
# Blob framing
# ----------------------------------------------------------------------
def _emit_header(out: bytearray, tag: int) -> None:
    out.extend(MAGIC)
    out.append(CODEC_VERSION)
    out.append(tag)


def _check_header(data: bytes, expected_tag: int) -> int:
    if len(data) < len(MAGIC) + 2:
        raise CodecError("blob too short for a codec header")
    if data[: len(MAGIC)] != MAGIC:
        raise CodecError("bad magic: not a cache-state codec blob")
    version = data[len(MAGIC)]
    if version != CODEC_VERSION:
        raise CodecError(
            f"unsupported codec version {version} (this reader is version {CODEC_VERSION})"
        )
    tag = data[len(MAGIC) + 1]
    if tag != expected_tag:
        raise CodecError(f"unexpected payload tag 0x{tag:02x}")
    return len(MAGIC) + 2


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def encode_state(state) -> bytes:
    """Encode one abstract cache state (any flavour) to a compact blob."""
    table = _SymbolTable()
    body = bytearray()
    _emit_state_body(body, state, table)
    out = bytearray()
    _emit_header(out, _TAG_STATE)
    table.emit(out)
    out.extend(body)
    return bytes(out)


def decode_state(data: bytes):
    """Inverse of :func:`encode_state`; raises :class:`CodecError` on any
    malformed, foreign-version or trailing-garbage input."""
    pos = _check_header(data, _TAG_STATE)
    symbols, pos = _SymbolTable.parse(data, pos)
    state, pos = _parse_state_body(data, pos, symbols)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing byte(s) after state")
    return state


def encode_state_map(states: Mapping[str, object]) -> bytes:
    """Encode a block-name → state map in one blob with a shared symbol
    table — the shard-delta wire shape.  Keys are written in sorted order
    (canonical bytes for equal maps)."""
    table = _SymbolTable()
    body = bytearray()
    _write_uvarint(body, len(states))
    for name in sorted(states):
        encoded = name.encode("utf-8")
        _write_uvarint(body, len(encoded))
        body.extend(encoded)
        _emit_state_body(body, states[name], table)
    out = bytearray()
    _emit_header(out, _TAG_STATE_MAP)
    table.emit(out)
    out.extend(body)
    return bytes(out)


def decode_state_map(data: bytes) -> dict[str, object]:
    """Inverse of :func:`encode_state_map`."""
    pos = _check_header(data, _TAG_STATE_MAP)
    symbols, pos = _SymbolTable.parse(data, pos)
    count, pos = _read_uvarint(data, pos)
    states: dict[str, object] = {}
    for _ in range(count):
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated map key")
        name = data[pos : pos + length].decode("utf-8")
        pos += length
        states[name], pos = _parse_state_body(data, pos, symbols)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing byte(s) after state map")
    return states
