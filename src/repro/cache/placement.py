"""Deterministic set placement, shared by the concrete and abstract caches.

A set-associative cache maps each memory block to exactly one cache set.
Both sides of the soundness argument — the concrete simulator and the
per-set abstract domain — must agree on that mapping, and the mapping
must be stable across processes: results are keyed into the persistent
store, replayed by the daemon after restarts, and computed by a process
pool, so a placement derived from Python's randomised builtin ``hash()``
would make set-associative runs irreproducible (PYTHONHASHSEED changes
it per process).

We therefore place blocks with :func:`zlib.crc32` over the canonical
``"symbol:index"`` spelling of the block, which is fully specified by
the zlib standard and identical on every platform and in every process.
"""

from __future__ import annotations

import zlib

from repro.ir.memory import MemoryBlock


def set_index(block: MemoryBlock, num_sets: int) -> int:
    """The cache set ``block`` maps to, in ``[0, num_sets)``.

    Deterministic across processes and platforms (CRC-32 of
    ``"symbol:index"``); ``num_sets == 1`` (fully associative) always
    yields set 0 without hashing.
    """
    if num_sets <= 1:
        return 0
    return zlib.crc32(f"{block.symbol}:{block.index}".encode("utf-8")) % num_sets


def partition_by_set(blocks, num_sets: int) -> dict[int, list[MemoryBlock]]:
    """Group ``blocks`` by their set index (sets with no blocks omitted)."""
    partition: dict[int, list[MemoryBlock]] = {}
    for block in blocks:
        partition.setdefault(set_index(block, num_sets), []).append(block)
    return partition
