"""Cache substrate: configuration, concrete LRU simulation, and the
abstract cache states used by the must-hit analysis.

Two abstract states are provided:

* :class:`~repro.cache.abstract.CacheState` — the classic must-analysis
  state (Section 4 / Appendix A of the paper): one age upper bound per
  memory block, join = pointwise max.
* :class:`~repro.cache.shadow.ShadowCacheState` — the refined state of
  Section 6.3 / Appendix B that additionally tracks *shadow variables*
  (may-ages) and uses them to avoid unnecessary aging at join-heavy loops.
"""

from repro.cache.config import CacheConfig
from repro.cache.concrete import ConcreteCache
from repro.cache.abstract import AGE_INFINITY, CacheState
from repro.cache.shadow import ShadowCacheState

__all__ = [
    "AGE_INFINITY",
    "CacheConfig",
    "CacheState",
    "ConcreteCache",
    "ShadowCacheState",
]
