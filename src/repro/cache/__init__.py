"""Cache substrate: configuration, concrete LRU simulation, and the
abstract cache states used by the must-hit analysis.

Two abstract states are provided:

* :class:`~repro.cache.abstract.CacheState` — the classic must-analysis
  state (Section 4 / Appendix A of the paper): one age upper bound per
  memory block, join = pointwise max.
* :class:`~repro.cache.shadow.ShadowCacheState` — the refined state of
  Section 6.3 / Appendix B that additionally tracks *shadow variables*
  (may-ages) and uses them to avoid unnecessary aging at join-heavy loops.

For set-associative geometries (``CacheConfig.associativity`` not None),
:class:`~repro.cache.setassoc.SetAssocCacheState` lifts either flavour
to a product of per-set states over the deterministic set placement of
:mod:`repro.cache.placement` — the same placement the concrete simulator
uses, which is what makes the soundness argument carry over.
"""

from repro.cache.config import CacheConfig, REPLACEMENT_POLICIES
from repro.cache.concrete import ConcreteCache
from repro.cache.abstract import AGE_INFINITY, CacheState
from repro.cache.placement import set_index
from repro.cache.setassoc import SetAssocCacheState
from repro.cache.shadow import ShadowCacheState

__all__ = [
    "AGE_INFINITY",
    "CacheConfig",
    "CacheState",
    "ConcreteCache",
    "REPLACEMENT_POLICIES",
    "SetAssocCacheState",
    "ShadowCacheState",
    "set_index",
]
