"""Abstract cache state for the must-hit analysis (Section 4, Appendix A).

The state maps each memory block to an *upper bound on its LRU age*:
``age <= N`` (the number of cache lines) means the block is guaranteed to
be in the cache on every path reaching the program point — a *must hit*.
Blocks not present in the map have age "infinity" (definitely possibly
uncached).

States are immutable from the caller's perspective: every operation
returns a new state, which is what the generic worklist solver expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.memory import AccessKind, BlockAccess, MemoryBlock, placeholder_blocks

#: Symbolic "outside the cache" age returned by :meth:`CacheState.age`.
#: Any value strictly greater than every legal ``num_lines`` works; using a
#: single sentinel keeps ages comparable across configurations.
AGE_INFINITY = 1 << 30


@dataclass(frozen=True)
class CacheState:
    """Must-analysis abstract cache state.

    ``ages`` only stores blocks whose age bound is at most ``num_lines``
    (i.e. blocks that are guaranteed cached); everything else is implicitly
    at :data:`AGE_INFINITY`.  ``is_bottom`` marks the unreachable state
    (the join identity, written ⊥ in the paper).

    ``policy`` selects the replacement semantics the transfer functions
    model: ``lru`` (the paper's domain, Figure 4) or ``fifo`` (no age
    refresh on a hit; see :meth:`access_block`).  The lattice operations
    are policy-independent.
    """

    num_lines: int
    ages: dict[MemoryBlock, int] = field(default_factory=dict)
    is_bottom: bool = False
    policy: str = "lru"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_lines: int, policy: str = "lru") -> "CacheState":
        """The entry state: an empty cache (nothing is guaranteed cached).

        This is the ⊤ element of Algorithm 1/2: no information is assumed
        about the initial cache contents.
        """
        return cls(num_lines=num_lines, policy=policy)

    @classmethod
    def bottom(cls, num_lines: int, policy: str = "lru") -> "CacheState":
        """The unreachable state (⊥): identity of the join."""
        return cls(num_lines=num_lines, is_bottom=True, policy=policy)

    @classmethod
    def from_ages(
        cls, num_lines: int, ages: dict[MemoryBlock, int], policy: str = "lru"
    ) -> "CacheState":
        kept = {block: age for block, age in ages.items() if age <= num_lines}
        return cls(num_lines=num_lines, ages=kept, policy=policy)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def age(self, block: MemoryBlock) -> int:
        """Upper bound on the age of ``block`` (AGE_INFINITY if uncached)."""
        if self.is_bottom:
            return AGE_INFINITY
        return self.ages.get(block, AGE_INFINITY)

    def must_hit(self, block: MemoryBlock) -> bool:
        """True when ``block`` is guaranteed to be cached."""
        return not self.is_bottom and block in self.ages

    def must_hit_access(self, access: BlockAccess) -> bool:
        """True when the access is guaranteed to hit, whichever block it
        resolves to at run time."""
        if self.is_bottom:
            return False
        return all(block in self.ages for block in access.blocks)

    def cached_blocks(self) -> set[MemoryBlock]:
        return set(self.ages)

    def __len__(self) -> int:
        return len(self.ages)

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def access(self, access: BlockAccess) -> "CacheState":
        """Apply the transfer function for one memory access."""
        if self.is_bottom:
            # Transfers never resurrect unreachable states.
            return self
        if access.kind is AccessKind.CONCRETE:
            return self.access_block(access.concrete_block)
        if access.kind is AccessKind.SECRET:
            # Secret-indexed accesses are handled fully conservatively: the
            # side-channel queries about them must never be optimistic.
            return self.access_unknown()
        return self.access_unknown_array(access.symbol, len(access.blocks))

    def access_block(self, block: MemoryBlock) -> "CacheState":
        """Access a single, statically known block.

        LRU (Figure 4 semantics): the accessed block becomes the
        youngest; every block that may have been younger than it ages by
        one.

        FIFO: a hit leaves the queue untouched, so if the block is
        guaranteed cached the state is unchanged.  Otherwise the access
        may miss, in which case a new line is inserted at the front:
        every bound grows by one, and the accessed block — now definitely
        resident, but at an unknown position (front on a miss, anywhere
        on a hit) — gets the weakest in-cache bound ``num_lines``.
        """
        if self.is_bottom:
            return self
        if self.policy == "fifo":
            if block in self.ages:
                return self
            new_ages = {}
            for other, age in self.ages.items():
                aged = age + 1
                if aged <= self.num_lines:
                    new_ages[other] = aged
            new_ages[block] = self.num_lines
            return CacheState(
                num_lines=self.num_lines, ages=new_ages, policy=self.policy
            )
        accessed_age = self.age(block)
        new_ages: dict[MemoryBlock, int] = {}
        for other, age in self.ages.items():
            if other == block:
                continue
            if age < accessed_age:
                aged = age + 1
                if aged <= self.num_lines:
                    new_ages[other] = aged
            else:
                new_ages[other] = age
        new_ages[block] = 1
        return CacheState(num_lines=self.num_lines, ages=new_ages, policy=self.policy)

    def access_unknown(self) -> "CacheState":
        """Access whose target block is not statically known.

        The sound must-analysis over-approximation: some (unknown) line may
        have been inserted in front of every cached block, so every age
        bound grows by one, and nothing new can be promised to be cached.
        """
        if self.is_bottom:
            return self
        new_ages: dict[MemoryBlock, int] = {}
        for block, age in self.ages.items():
            aged = age + 1
            if aged <= self.num_lines:
                new_ages[block] = aged
        return CacheState(num_lines=self.num_lines, ages=new_ages, policy=self.policy)

    def access_unknown_array(self, symbol: str, num_blocks: int) -> "CacheState":
        """Unknown-index access to an array, using the paper's Table-1
        convention: the access is modelled as touching the next *symbolic
        placeholder line* of the array (``decis_lev[1*]``, ``[2*]``, ...).

        An array of ``m`` blocks has ``m`` placeholders, which bounds the
        total cache pressure the analysis attributes to index-unknown
        accesses by the array's real footprint rather than by the number of
        accesses.  Once every placeholder is present the plain must state
        has no way to tell which existing line was re-used, so it falls
        back to the conservative age-everyone rule (the shadow-variable
        state refines exactly this case).
        """
        if self.is_bottom:
            return self
        for placeholder in placeholder_blocks(symbol, num_blocks):
            if placeholder not in self.ages:
                return self.access_block(placeholder)
        return self.access_unknown()

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def join(self, other: "CacheState") -> "CacheState":
        """Pointwise maximum of ages (Figure 5): a block is guaranteed
        cached after the join only if it is guaranteed cached in both
        incoming states."""
        self._check_compatible(other)
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        new_ages: dict[MemoryBlock, int] = {}
        for block, age in self.ages.items():
            other_age = other.ages.get(block)
            if other_age is not None:
                new_ages[block] = max(age, other_age)
        return CacheState(num_lines=self.num_lines, ages=new_ages, policy=self.policy)

    def widen(self, previous: "CacheState") -> "CacheState":
        """Widening: any age that grew since ``previous`` jumps to infinity.

        ``self`` is the new (already joined) state, ``previous`` the state
        stored at the widening point on the previous iteration.
        """
        self._check_compatible(previous)
        if previous.is_bottom or self.is_bottom:
            return self
        new_ages: dict[MemoryBlock, int] = {}
        for block, age in self.ages.items():
            previous_age = previous.ages.get(block)
            if previous_age is None:
                # The block was not guaranteed cached before; keep the new
                # bound (it can only have been introduced by a transfer).
                new_ages[block] = age
            elif age > previous_age:
                # Growing: extrapolate to "evicted".
                continue
            else:
                new_ages[block] = age
        return CacheState(num_lines=self.num_lines, ages=new_ages, policy=self.policy)

    def leq(self, other: "CacheState") -> bool:
        """Partial order: ``self ⊑ other`` iff self is at least as precise."""
        self._check_compatible(other)
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        for block, other_age in other.ages.items():
            if self.ages.get(block, AGE_INFINITY) > other_age:
                return False
        return True

    def _check_compatible(self, other: "CacheState") -> None:
        if self.num_lines != other.num_lines or self.policy != other.policy:
            raise ValueError(
                "incompatible cache states: "
                f"{self.num_lines} lines/{self.policy} vs "
                f"{other.num_lines} lines/{other.policy}"
            )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheState):
            return NotImplemented
        return (
            self.num_lines == other.num_lines
            and self.is_bottom == other.is_bottom
            and self.policy == other.policy
            and self.ages == other.ages
        )

    def __hash__(self) -> int:  # pragma: no cover - states are not hashed in hot paths
        return hash(
            (self.num_lines, self.is_bottom, self.policy, frozenset(self.ages.items()))
        )

    def __repr__(self) -> str:
        if self.is_bottom:
            return f"CacheState(⊥, {self.num_lines} lines)"
        items = ", ".join(
            f"{block}:{age}" for block, age in sorted(self.ages.items(), key=lambda i: (i[1], str(i[0])))
        )
        return f"CacheState({{{items}}})"

    def describe(self) -> str:
        """A Table-1-style listing: blocks ordered youngest to oldest."""
        if self.is_bottom:
            return "⊥"
        ordered = sorted(self.ages.items(), key=lambda item: (item[1], str(item[0])))
        return "{" + ", ".join(f"{block}@{age}" for block, age in ordered) + "}"
