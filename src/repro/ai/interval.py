"""A textbook interval domain and a small interval analysis over the IR.

The paper points out that its lifting is independent of the abstract
domain ("the abstract domain may be interval or octagonal").  This module
provides the interval domain both to demonstrate that the generic solver
is domain-agnostic and to give the test suite a second, simpler domain on
which to exercise the worklist machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ai.solver import FixpointResult, solve_forward
from repro.ir.cfg import CFG
from repro.ir.instructions import BinOp, Const, Copy, Load, Operand, Temp, UnOp

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (possibly unbounded)."""

    lo: float = _NEG_INF
    hi: float = _POS_INF

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def top(cls) -> "Interval":
        return cls(_NEG_INF, _POS_INF)

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(value, value)

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi and self.lo not in (_NEG_INF, _POS_INF)

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, previous: "Interval") -> "Interval":
        if previous.is_empty:
            return self
        lo = self.lo if self.lo >= previous.lo else _NEG_INF
        hi = self.hi if self.hi <= previous.hi else _POS_INF
        return Interval(lo, hi)

    def leq(self, other: "Interval") -> bool:
        if self.is_empty:
            return True
        if other.is_empty:
            return False
        return other.lo <= self.lo and self.hi <= other.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return Interval(1, 0)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return Interval(1, 0)
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return Interval(1, 0)
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        finite = [p for p in products if p == p]  # filter NaN from inf*0
        if not finite:
            return Interval.top()
        return Interval(min(finite), max(finite))

    def neg(self) -> "Interval":
        if self.is_empty:
            return self
        return Interval(-self.hi, -self.lo)

    def __repr__(self) -> str:
        if self.is_empty:
            return "Interval(∅)"
        return f"[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class IntervalState:
    """Map from temporaries to intervals; ⊥ marks unreachable code."""

    values: dict[Temp, Interval] = field(default_factory=dict)
    is_bottom: bool = False

    @classmethod
    def entry(cls) -> "IntervalState":
        return cls()

    @classmethod
    def bottom(cls) -> "IntervalState":
        return cls(is_bottom=True)

    def value_of(self, operand: Operand) -> Interval:
        if isinstance(operand, Const):
            return Interval.const(operand.value)
        if isinstance(operand, Temp):
            return self.values.get(operand, Interval.top())
        return Interval.top()

    def set(self, temp: Temp, interval: Interval) -> "IntervalState":
        values = dict(self.values)
        values[temp] = interval
        return IntervalState(values=values)

    def join(self, other: "IntervalState") -> "IntervalState":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        values: dict[Temp, Interval] = {}
        for temp in set(self.values) | set(other.values):
            values[temp] = self.values.get(temp, Interval.top()).join(
                other.values.get(temp, Interval.top())
            )
        return IntervalState(values=values)

    def widen(self, previous: "IntervalState") -> "IntervalState":
        if previous.is_bottom or self.is_bottom:
            return self
        values: dict[Temp, Interval] = {}
        for temp, interval in self.values.items():
            prior = previous.values.get(temp)
            values[temp] = interval if prior is None else interval.widen(prior)
        return IntervalState(values=values)

    def leq(self, other: "IntervalState") -> bool:
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        for temp, other_interval in other.values.items():
            if not self.values.get(temp, Interval.top()).leq(other_interval):
                return False
        # Temps known only to self are unconstrained (top) in other.
        return True


def _transfer_block(cfg: CFG, name: str, state: IntervalState) -> IntervalState:
    if state.is_bottom:
        return state
    current = state
    for instruction in cfg.block(name).instructions:
        if isinstance(instruction, Copy):
            current = current.set(instruction.dest, current.value_of(instruction.src))
        elif isinstance(instruction, Load):
            current = current.set(instruction.dest, Interval.top())
        elif isinstance(instruction, UnOp):
            operand = current.value_of(instruction.operand)
            if instruction.op == "-":
                current = current.set(instruction.dest, operand.neg())
            else:
                current = current.set(instruction.dest, Interval.top())
        elif isinstance(instruction, BinOp):
            left = current.value_of(instruction.left)
            right = current.value_of(instruction.right)
            if instruction.op == "+":
                current = current.set(instruction.dest, left.add(right))
            elif instruction.op == "-":
                current = current.set(instruction.dest, left.sub(right))
            elif instruction.op == "*":
                current = current.set(instruction.dest, left.mul(right))
            elif instruction.op in ("<", "<=", ">", ">=", "==", "!="):
                current = current.set(instruction.dest, Interval(0, 1))
            else:
                current = current.set(instruction.dest, Interval.top())
        elif instruction.defined_temp() is not None:
            current = current.set(instruction.defined_temp(), Interval.top())
    return current


def analyze_intervals(cfg: CFG) -> FixpointResult[IntervalState]:
    """Run the interval analysis over ``cfg`` and return per-block states."""
    return solve_forward(
        cfg,
        entry_state=IntervalState.entry(),
        bottom=IntervalState.bottom(),
        transfer=lambda name, state: _transfer_block(cfg, name, state),
    )
