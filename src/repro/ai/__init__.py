"""Generic abstract-interpretation machinery.

The cache analyses in :mod:`repro.analysis` are instances of the classic
worklist fixpoint computation (Algorithm 1 in the paper).  This package
provides that machinery in a domain-independent form:

* :mod:`repro.ai.lattice` — the :class:`AbstractValue` protocol every
  domain element implements (join / widen / leq / bottom check);
* :mod:`repro.ai.solver` — the forward worklist solver over a CFG;
* :mod:`repro.ai.interval` — a textbook interval domain, included both as
  a second instantiation of the framework (the paper notes the approach is
  domain-agnostic) and as a building block for tests.
"""

from repro.ai.lattice import AbstractValue
from repro.ai.solver import FixpointResult, solve_forward
from repro.ai.interval import Interval, IntervalState, analyze_intervals

__all__ = [
    "AbstractValue",
    "FixpointResult",
    "Interval",
    "IntervalState",
    "analyze_intervals",
    "solve_forward",
]
