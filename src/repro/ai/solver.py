"""Generic forward worklist fixpoint solver (Algorithm 1 of the paper).

The solver is parameterised by the domain element at the entry, a bottom
element, and a transfer function over basic blocks.  Widening is applied
at loop headers (or at user-supplied widening points) after a
configurable number of visits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.errors import AnalysisError
from repro.ir.cfg import CFG
from repro.ir.loops import find_natural_loops

T = TypeVar("T")

#: Number of visits to a widening point before widening kicks in.
DEFAULT_WIDENING_DELAY = 3

#: Hard bound on node visits; hitting it indicates a non-monotone transfer
#: function or a broken partial order, so the solver raises rather than
#: silently returning garbage.
DEFAULT_MAX_VISITS = 2_000_000


@dataclass
class FixpointResult(Generic[T]):
    """Result of a forward fixpoint computation."""

    entry_states: dict[str, T] = field(default_factory=dict)
    exit_states: dict[str, T] = field(default_factory=dict)
    iterations: int = 0
    widenings: int = 0

    def entry_state(self, block: str) -> T:
        return self.entry_states[block]

    def exit_state(self, block: str) -> T:
        return self.exit_states[block]


def solve_forward(
    cfg: CFG,
    entry_state: T,
    bottom: T,
    transfer: Callable[[str, T], T],
    widening_points: set[str] | None = None,
    widening_delay: int = DEFAULT_WIDENING_DELAY,
    max_visits: int = DEFAULT_MAX_VISITS,
) -> FixpointResult[T]:
    """Run the worklist algorithm on ``cfg``.

    Parameters
    ----------
    entry_state:
        Domain element holding at the entry of the entry block (⊤ in the
        paper's formulation of the cache analysis: the empty cache).
    bottom:
        The unreachable element (⊥), used to initialise all other blocks.
    transfer:
        ``transfer(block_name, state_in) -> state_out``.
    widening_points:
        Blocks at which widening is applied.  Defaults to the headers of
        the natural loops of ``cfg``.
    """
    if widening_points is None:
        widening_points = {loop.header for loop in find_natural_loops(cfg)}

    reachable = cfg.reachable_blocks()
    order = {name: position for position, name in enumerate(cfg.reverse_postorder())}
    entry_states: dict[str, T] = {name: bottom for name in reachable}
    exit_states: dict[str, T] = {name: bottom for name in reachable}
    entry_states[cfg.entry] = entry_state
    visit_counts: dict[str, int] = {name: 0 for name in reachable}

    result = FixpointResult[T](entry_states=entry_states, exit_states=exit_states)

    worklist: deque[str] = deque([cfg.entry])
    queued = {cfg.entry}
    total_visits = 0
    while worklist:
        # Pop the block earliest in reverse postorder for fast convergence.
        name = min(worklist, key=lambda block: order.get(block, 1 << 30))
        worklist.remove(name)
        queued.discard(name)

        total_visits += 1
        if total_visits > max_visits:
            raise AnalysisError(
                f"fixpoint did not converge within {max_visits} block visits"
            )
        visit_counts[name] += 1
        result.iterations += 1

        state_out = transfer(name, entry_states[name])
        exit_states[name] = state_out

        for successor in cfg.successors(name):
            current = entry_states[successor]
            joined = current.join(state_out)
            if successor in widening_points and visit_counts[name] >= 0:
                if _visits(visit_counts, successor) >= widening_delay:
                    widened = joined.widen(current)
                    if widened is not joined:
                        result.widenings += 1
                    joined = widened
            if not joined.leq(current):
                entry_states[successor] = joined
                if successor not in queued:
                    worklist.append(successor)
                    queued.add(successor)
    return result


def _visits(visit_counts: dict[str, int], block: str) -> int:
    return visit_counts.get(block, 0)
