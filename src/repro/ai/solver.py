"""Generic forward worklist fixpoint solver (Algorithm 1 of the paper).

The solver is parameterised by the domain element at the entry, a bottom
element, and a transfer function over basic blocks.  Widening is applied
at loop headers (or at user-supplied widening points) after a
configurable number of visits.

Scheduling is delegated to the shared priority-worklist kernel
(:mod:`repro.engine.worklist`): blocks pop in reverse-postorder priority
from a heap, replacing the former O(n) ``min`` + ``remove`` scan over a
deque (O(n²) over a run with a wide frontier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.engine.worklist import (
    DEFAULT_WIDENING_DELAY,
    PriorityWorklist,
    WideningPolicy,
    run_fixpoint,
)
from repro.ir.cfg import CFG
from repro.ir.loops import find_natural_loops

T = TypeVar("T")

#: Hard bound on node visits; hitting it indicates a non-monotone transfer
#: function or a broken partial order, so the solver raises rather than
#: silently returning garbage.
DEFAULT_MAX_VISITS = 2_000_000


@dataclass
class FixpointResult(Generic[T]):
    """Result of a forward fixpoint computation."""

    entry_states: dict[str, T] = field(default_factory=dict)
    exit_states: dict[str, T] = field(default_factory=dict)
    iterations: int = 0
    widenings: int = 0

    def entry_state(self, block: str) -> T:
        return self.entry_states[block]

    def exit_state(self, block: str) -> T:
        return self.exit_states[block]


def solve_forward(
    cfg: CFG,
    entry_state: T,
    bottom: T,
    transfer: Callable[[str, T], T],
    widening_points: set[str] | None = None,
    widening_delay: int = DEFAULT_WIDENING_DELAY,
    max_visits: int = DEFAULT_MAX_VISITS,
) -> FixpointResult[T]:
    """Run the worklist algorithm on ``cfg``.

    Parameters
    ----------
    entry_state:
        Domain element holding at the entry of the entry block (⊤ in the
        paper's formulation of the cache analysis: the empty cache).
    bottom:
        The unreachable element (⊥), used to initialise all other blocks.
    transfer:
        ``transfer(block_name, state_in) -> state_out``.
    widening_points:
        Blocks at which widening is applied.  Defaults to the headers of
        the natural loops of ``cfg``.
    """
    if widening_points is None:
        widening_points = {loop.header for loop in find_natural_loops(cfg)}

    reachable = cfg.reachable_blocks()
    order = {name: position for position, name in enumerate(cfg.reverse_postorder())}
    entry_states: dict[str, T] = {name: bottom for name in reachable}
    exit_states: dict[str, T] = {name: bottom for name in reachable}
    entry_states[cfg.entry] = entry_state
    visit_counts: dict[str, int] = {name: 0 for name in reachable}

    result = FixpointResult[T](entry_states=entry_states, exit_states=exit_states)
    policy = WideningPolicy(points=widening_points, delay=widening_delay)

    def step(name: str) -> list[str]:
        visit_counts[name] += 1
        result.iterations += 1
        state_out = transfer(name, entry_states[name])
        exit_states[name] = state_out
        changed: list[str] = []
        for successor in cfg.successors(name):
            current = entry_states[successor]
            joined = policy.apply(
                successor, visit_counts.get(successor, 0), current, current.join(state_out)
            )
            if not joined.leq(current):
                entry_states[successor] = joined
                changed.append(successor)
        return changed

    worklist = PriorityWorklist(order, initial=[cfg.entry])
    run_fixpoint(worklist, step, max_visits=max_visits)
    result.widenings = policy.widenings
    return result
