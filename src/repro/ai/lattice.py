"""The abstract-value protocol shared by all domains."""

from __future__ import annotations

from typing import Protocol, TypeVar, runtime_checkable

T = TypeVar("T", bound="AbstractValue")


@runtime_checkable
class AbstractValue(Protocol):
    """Minimal interface a domain element must provide to the solver.

    The cache states (:class:`~repro.cache.abstract.CacheState`,
    :class:`~repro.cache.shadow.ShadowCacheState`) and the interval state
    all satisfy this protocol.
    """

    @property
    def is_bottom(self) -> bool:
        """Whether this is the unreachable (⊥) element."""
        ...

    def join(self: T, other: T) -> T:
        """Least upper bound (the ⊔ operator)."""
        ...

    def widen(self: T, previous: T) -> T:
        """Widening of ``self`` (the new, joined value) against the value
        stored on the previous iteration.  Domains with finite height may
        simply return ``self``."""
        ...

    def leq(self: T, other: T) -> bool:
        """Partial order test ``self ⊑ other``."""
        ...
