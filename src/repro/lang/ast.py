"""Abstract syntax tree for MiniC.

Every node is a plain dataclass carrying an optional source location so
error messages and analysis reports can refer back to the program text.
Expressions and statements form two small class hierarchies rooted at
:class:`Expr` and :class:`Stmt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class BaseType(Enum):
    """Scalar base types with their size in bytes."""

    CHAR = 1
    INT = 4
    LONG = 8
    VOID = 0

    @property
    def size(self) -> int:
        return self.value


@dataclass(frozen=True)
class Qualifiers:
    """Declaration qualifiers that affect the analysis.

    ``is_reg`` variables never generate memory references; ``is_secret``
    variables taint the expressions they flow into, which is how the
    side-channel application identifies secret-indexed array accesses.
    """

    is_reg: bool = False
    is_secret: bool = False
    is_const: bool = False

    def merged_with(self, other: "Qualifiers") -> "Qualifiers":
        return Qualifiers(
            is_reg=self.is_reg or other.is_reg,
            is_secret=self.is_secret or other.is_secret,
            is_const=self.is_const or other.is_const,
        )


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """An array element access ``array[index]``."""

    array: str = ""
    index: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements and declarations
# ----------------------------------------------------------------------
@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """Declaration of a scalar variable, possibly with an initializer."""

    name: str = ""
    base_type: BaseType = BaseType.INT
    qualifiers: Qualifiers = field(default_factory=Qualifiers)
    init: Expr | None = None


@dataclass
class ArrayDecl(Stmt):
    """Declaration of a one-dimensional array, possibly with an initializer
    list.  Initializer values must be integer constants."""

    name: str = ""
    base_type: BaseType = BaseType.INT
    length: int = 0
    qualifiers: Qualifiers = field(default_factory=Qualifiers)
    init: list[int] | None = None


@dataclass
class Assign(Stmt):
    """Assignment to either a scalar (``Identifier``) or an array element
    (``Index``)."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStatement(Stmt):
    """An expression evaluated for its side effects, such as a call or a
    bare array read used to touch a cache line (``ph[i];``)."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: Block = field(default_factory=Block)
    else_body: Block | None = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = field(default_factory=Block)


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: Block = field(default_factory=Block)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Fence(Stmt):
    """A speculation barrier statement (``fence;``).

    Lowered to the IR :class:`~repro.ir.instructions.Fence` instruction;
    architecturally a no-op, but it stops speculative execution, which is
    how synthesised mitigations close speculative leaks.
    """


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Param(Node):
    name: str = ""
    base_type: BaseType = BaseType.INT
    qualifiers: Qualifiers = field(default_factory=Qualifiers)


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: BaseType = BaseType.INT
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)


@dataclass
class Program(Node):
    """A MiniC translation unit: global declarations plus functions."""

    globals: list[VarDecl | ArrayDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        """Return the function named ``name``.

        Raises ``KeyError`` if the function does not exist.
        """
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def has_function(self, name: str) -> bool:
        return any(func.name == name for func in self.functions)


# ----------------------------------------------------------------------
# Generic traversal helpers
# ----------------------------------------------------------------------
def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions in pre-order."""
    yield expr
    if isinstance(expr, Index):
        yield from walk_expr(expr.index)
    elif isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_statements(stmt: Stmt):
    """Yield ``stmt`` and all nested statements in pre-order."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.statements:
            yield from walk_statements(child)
    elif isinstance(stmt, If):
        yield from walk_statements(stmt.then_body)
        if stmt.else_body is not None:
            yield from walk_statements(stmt.else_body)
    elif isinstance(stmt, While):
        yield from walk_statements(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_statements(stmt.init)
        if stmt.step is not None:
            yield from walk_statements(stmt.step)
        yield from walk_statements(stmt.body)
