"""Hand-written lexer for MiniC.

The lexer turns source text into a flat list of :class:`Token` objects.
It understands decimal and hexadecimal integer literals, character
literals (which become their integer codepoint), identifiers, keywords,
and both ``//`` and ``/* ... */`` comments.
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)

_ESCAPES = {
    "n": ord("\n"),
    "t": ord("\t"),
    "r": ord("\r"),
    "0": 0,
    "\\": ord("\\"),
    "'": ord("'"),
    '"': ord('"'),
}


class Lexer:
    """Converts MiniC source text into tokens."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    # Character helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    # ------------------------------------------------------------------
    # Tokenisation
    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        """Return the full token stream, terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._at_end():
                break
            tokens.append(self._next_token())
        tokens.append(Token(TokenType.EOF, "", self.line, self.column))
        return tokens

    def _skip_whitespace_and_comments(self) -> None:
        while not self._at_end():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not self._at_end() and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self._at_end():
                    raise LexerError("unterminated block comment", start_line, start_col)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()

        if char.isdigit():
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_identifier(line, column)
        if char == "'":
            return self._lex_char_literal(line, column)

        for text, token_type in MULTI_CHAR_OPERATORS:
            if self.source.startswith(text, self.pos):
                self._advance(len(text))
                return Token(token_type, text, line, column)

        if char in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(SINGLE_CHAR_OPERATORS[char], char, line, column)

        raise LexerError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        # Consume (and drop) C integer suffixes such as L, UL, u.
        while self._peek() in ("l", "L", "u", "U"):
            self._advance()
        return Token(TokenType.INT_LITERAL, text, line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        token_type = KEYWORDS.get(text, TokenType.IDENT)
        return Token(token_type, text, line, column)

    def _lex_char_literal(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        if self._at_end():
            raise LexerError("unterminated character literal", line, column)
        char = self._peek()
        if char == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                raise LexerError(f"unknown escape sequence \\{escape}", line, column)
            value = _ESCAPES[escape]
            self._advance()
        else:
            value = ord(char)
            self._advance()
        if self._peek() != "'":
            raise LexerError("unterminated character literal", line, column)
        self._advance()
        return Token(TokenType.INT_LITERAL, str(value), line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC ``source`` text."""
    return Lexer(source).tokenize()
