"""Token definitions for the MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """All token categories produced by the lexer."""

    # Literals and identifiers
    INT_LITERAL = auto()
    IDENT = auto()

    # Keywords
    KW_INT = auto()
    KW_CHAR = auto()
    KW_LONG = auto()
    KW_VOID = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_WHILE = auto()
    KW_FOR = auto()
    KW_RETURN = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()
    KW_FENCE = auto()
    KW_REG = auto()
    KW_SECRET = auto()
    KW_CONST = auto()
    KW_UNSIGNED = auto()

    # Punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    SEMICOLON = auto()
    COMMA = auto()

    # Operators
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    ASSIGN = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    EQ = auto()
    NE = auto()
    AND_AND = auto()
    OR_OR = auto()
    NOT = auto()
    AMP = auto()
    PIPE = auto()
    CARET = auto()
    TILDE = auto()
    SHL = auto()
    SHR = auto()
    PLUS_PLUS = auto()
    MINUS_MINUS = auto()

    # End of input
    EOF = auto()


KEYWORDS: dict[str, TokenType] = {
    "int": TokenType.KW_INT,
    "char": TokenType.KW_CHAR,
    "long": TokenType.KW_LONG,
    "void": TokenType.KW_VOID,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "for": TokenType.KW_FOR,
    "return": TokenType.KW_RETURN,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
    "fence": TokenType.KW_FENCE,
    # The x86 spelling, so kernels hardened with real intrinsics parse.
    "lfence": TokenType.KW_FENCE,
    "reg": TokenType.KW_REG,
    "register": TokenType.KW_REG,
    "secret": TokenType.KW_SECRET,
    "const": TokenType.KW_CONST,
    "unsigned": TokenType.KW_UNSIGNED,
    # Common C typedefs map onto the base types so benchmark kernels can be
    # pasted with minimal editing.
    "uint8_t": TokenType.KW_CHAR,
    "int8_t": TokenType.KW_CHAR,
    "uint32_t": TokenType.KW_INT,
    "int32_t": TokenType.KW_INT,
    "uint64_t": TokenType.KW_LONG,
    "int64_t": TokenType.KW_LONG,
    "size_t": TokenType.KW_LONG,
}

# Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS: list[tuple[str, TokenType]] = [
    ("<<", TokenType.SHL),
    (">>", TokenType.SHR),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
    ("&&", TokenType.AND_AND),
    ("||", TokenType.OR_OR),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("++", TokenType.PLUS_PLUS),
    ("--", TokenType.MINUS_MINUS),
]

SINGLE_CHAR_OPERATORS: dict[str, TokenType] = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMICOLON,
    ",": TokenType.COMMA,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.ASSIGN,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
    "&": TokenType.AMP,
    "|": TokenType.PIPE,
    "^": TokenType.CARET,
    "~": TokenType.TILDE,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
