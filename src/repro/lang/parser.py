"""Recursive-descent parser for MiniC.

The grammar is a small subset of C covering exactly what the paper's
benchmarks need: global scalar/array declarations with constant
initializers, function definitions, ``if``/``else``, ``while``, ``for``,
``break``/``continue``/``return``, assignments (including ``+=``, ``-=``,
``++`` and ``--`` sugar), and the usual expression operators.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    ArrayDecl,
    Assign,
    BaseType,
    BinaryOp,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    ExprStatement,
    Fence,
    For,
    FunctionDef,
    Identifier,
    If,
    Index,
    IntLiteral,
    Param,
    Program,
    Qualifiers,
    Return,
    Stmt,
    UnaryOp,
    VarDecl,
    While,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType

_TYPE_KEYWORDS = {
    TokenType.KW_INT: BaseType.INT,
    TokenType.KW_CHAR: BaseType.CHAR,
    TokenType.KW_LONG: BaseType.LONG,
    TokenType.KW_VOID: BaseType.VOID,
}

_QUALIFIER_KEYWORDS = {
    TokenType.KW_REG,
    TokenType.KW_SECRET,
    TokenType.KW_CONST,
    TokenType.KW_UNSIGNED,
}

_DECL_START = set(_TYPE_KEYWORDS) | _QUALIFIER_KEYWORDS


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _match(self, *token_types: TokenType) -> Token | None:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {what}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> Program:
        program = Program()
        while not self._check(TokenType.EOF):
            qualifiers, base_type = self._parse_decl_prefix()
            name_token = self._expect(TokenType.IDENT, "identifier")
            if self._check(TokenType.LPAREN):
                program.functions.append(
                    self._parse_function_rest(qualifiers, base_type, name_token)
                )
            else:
                decls = self._parse_declarators_rest(qualifiers, base_type, name_token)
                program.globals.extend(decls)
        return program

    def _parse_decl_prefix(self) -> tuple[Qualifiers, BaseType]:
        """Parse a possibly-interleaved sequence of qualifiers and a base type."""
        start = self._peek()
        qualifiers = Qualifiers()
        base_type: BaseType | None = None
        saw_unsigned = False
        while self._peek().type in _DECL_START:
            token = self._advance()
            if token.type in _TYPE_KEYWORDS:
                base_type = _TYPE_KEYWORDS[token.type]
            elif token.type is TokenType.KW_REG:
                qualifiers = qualifiers.merged_with(Qualifiers(is_reg=True))
            elif token.type is TokenType.KW_SECRET:
                qualifiers = qualifiers.merged_with(Qualifiers(is_secret=True))
            elif token.type is TokenType.KW_CONST:
                qualifiers = qualifiers.merged_with(Qualifiers(is_const=True))
            elif token.type is TokenType.KW_UNSIGNED:
                saw_unsigned = True
        if base_type is None:
            if saw_unsigned:
                base_type = BaseType.INT
            else:
                raise ParseError(
                    f"expected a type, found {start.value!r}", start.line, start.column
                )
        return qualifiers, base_type

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _parse_declarators_rest(
        self, qualifiers: Qualifiers, base_type: BaseType, first_name: Token
    ) -> list[VarDecl | ArrayDecl]:
        """Parse the remainder of a declaration statement after the first
        identifier, handling comma-separated declarator lists."""
        decls = [self._parse_single_declarator(qualifiers, base_type, first_name)]
        while self._match(TokenType.COMMA):
            name_token = self._expect(TokenType.IDENT, "identifier")
            decls.append(self._parse_single_declarator(qualifiers, base_type, name_token))
        self._expect(TokenType.SEMICOLON, "';'")
        return decls

    def _parse_single_declarator(
        self, qualifiers: Qualifiers, base_type: BaseType, name_token: Token
    ) -> VarDecl | ArrayDecl:
        name = name_token.value
        line, column = name_token.line, name_token.column
        if self._match(TokenType.LBRACKET):
            length_expr = self._parse_expression()
            length = _require_constant(length_expr, name_token)
            self._expect(TokenType.RBRACKET, "']'")
            init_values: list[int] | None = None
            if self._match(TokenType.ASSIGN):
                init_values = self._parse_array_initializer(name_token)
            return ArrayDecl(
                name=name,
                base_type=base_type,
                length=length,
                qualifiers=qualifiers,
                init=init_values,
                line=line,
                column=column,
            )
        init: Expr | None = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expression()
        return VarDecl(
            name=name,
            base_type=base_type,
            qualifiers=qualifiers,
            init=init,
            line=line,
            column=column,
        )

    def _parse_array_initializer(self, context: Token) -> list[int]:
        self._expect(TokenType.LBRACE, "'{'")
        values: list[int] = []
        if not self._check(TokenType.RBRACE):
            values.append(_require_constant(self._parse_expression(), context))
            while self._match(TokenType.COMMA):
                if self._check(TokenType.RBRACE):
                    break  # allow a trailing comma
                values.append(_require_constant(self._parse_expression(), context))
        self._expect(TokenType.RBRACE, "'}'")
        return values

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _parse_function_rest(
        self, qualifiers: Qualifiers, return_type: BaseType, name_token: Token
    ) -> FunctionDef:
        del qualifiers  # qualifiers on functions are accepted and ignored
        self._expect(TokenType.LPAREN, "'('")
        params: list[Param] = []
        if not self._check(TokenType.RPAREN):
            if self._check(TokenType.KW_VOID) and self._peek(1).type is TokenType.RPAREN:
                self._advance()
            else:
                params.append(self._parse_param())
                while self._match(TokenType.COMMA):
                    params.append(self._parse_param())
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_block()
        return FunctionDef(
            name=name_token.value,
            return_type=return_type,
            params=params,
            body=body,
            line=name_token.line,
            column=name_token.column,
        )

    def _parse_param(self) -> Param:
        qualifiers, base_type = self._parse_decl_prefix()
        name_token = self._expect(TokenType.IDENT, "parameter name")
        return Param(
            name=name_token.value,
            base_type=base_type,
            qualifiers=qualifiers,
            line=name_token.line,
            column=name_token.column,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> Block:
        open_token = self._expect(TokenType.LBRACE, "'{'")
        statements: list[Stmt] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.EOF):
                raise ParseError("unterminated block", open_token.line, open_token.column)
            statements.extend(self._parse_statement())
        self._expect(TokenType.RBRACE, "'}'")
        return Block(statements=statements, line=open_token.line, column=open_token.column)

    def _parse_statement(self) -> list[Stmt]:
        """Parse one statement.

        Returns a list because a single declaration statement such as
        ``int a, b;`` expands to several AST nodes.
        """
        token = self._peek()
        if token.type in _DECL_START:
            qualifiers, base_type = self._parse_decl_prefix()
            name_token = self._expect(TokenType.IDENT, "identifier")
            return list(self._parse_declarators_rest(qualifiers, base_type, name_token))
        if token.type is TokenType.LBRACE:
            return [self._parse_block()]
        if token.type is TokenType.KW_IF:
            return [self._parse_if()]
        if token.type is TokenType.KW_WHILE:
            return [self._parse_while()]
        if token.type is TokenType.KW_FOR:
            return [self._parse_for()]
        if token.type is TokenType.KW_RETURN:
            self._advance()
            value = None
            if not self._check(TokenType.SEMICOLON):
                value = self._parse_expression()
            self._expect(TokenType.SEMICOLON, "';'")
            return [Return(value=value, line=token.line, column=token.column)]
        if token.type is TokenType.KW_BREAK:
            self._advance()
            self._expect(TokenType.SEMICOLON, "';'")
            return [Break(line=token.line, column=token.column)]
        if token.type is TokenType.KW_CONTINUE:
            self._advance()
            self._expect(TokenType.SEMICOLON, "';'")
            return [Continue(line=token.line, column=token.column)]
        if token.type is TokenType.KW_FENCE:
            self._advance()
            # Tolerate the intrinsic-call spelling ``lfence();``.
            if self._match(TokenType.LPAREN):
                self._expect(TokenType.RPAREN, "')'")
            self._expect(TokenType.SEMICOLON, "';'")
            return [Fence(line=token.line, column=token.column)]
        if token.type is TokenType.SEMICOLON:
            self._advance()
            return []
        stmt = self._parse_simple_statement()
        self._expect(TokenType.SEMICOLON, "';'")
        return [stmt]

    def _parse_simple_statement(self) -> Stmt:
        """Parse an assignment or expression statement without the trailing
        semicolon (shared by statement and ``for`` header parsing)."""
        token = self._peek()
        lhs = self._parse_expression()
        if self._match(TokenType.ASSIGN):
            value = self._parse_expression()
            return Assign(target=lhs, value=value, line=token.line, column=token.column)
        if self._match(TokenType.PLUS_ASSIGN):
            value = self._parse_expression()
            return Assign(
                target=lhs,
                value=BinaryOp(op="+", left=lhs, right=value, line=token.line, column=token.column),
                line=token.line,
                column=token.column,
            )
        if self._match(TokenType.MINUS_ASSIGN):
            value = self._parse_expression()
            return Assign(
                target=lhs,
                value=BinaryOp(op="-", left=lhs, right=value, line=token.line, column=token.column),
                line=token.line,
                column=token.column,
            )
        if self._match(TokenType.PLUS_PLUS):
            one = IntLiteral(value=1, line=token.line, column=token.column)
            return Assign(
                target=lhs,
                value=BinaryOp(op="+", left=lhs, right=one, line=token.line, column=token.column),
                line=token.line,
                column=token.column,
            )
        if self._match(TokenType.MINUS_MINUS):
            one = IntLiteral(value=1, line=token.line, column=token.column)
            return Assign(
                target=lhs,
                value=BinaryOp(op="-", left=lhs, right=one, line=token.line, column=token.column),
                line=token.line,
                column=token.column,
            )
        return ExprStatement(expr=lhs, line=token.line, column=token.column)

    def _parse_if(self) -> If:
        token = self._expect(TokenType.KW_IF, "'if'")
        self._expect(TokenType.LPAREN, "'('")
        cond = self._parse_expression()
        self._expect(TokenType.RPAREN, "')'")
        then_body = self._parse_statement_as_block()
        else_body: Block | None = None
        if self._match(TokenType.KW_ELSE):
            else_body = self._parse_statement_as_block()
        return If(
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            line=token.line,
            column=token.column,
        )

    def _parse_while(self) -> While:
        token = self._expect(TokenType.KW_WHILE, "'while'")
        self._expect(TokenType.LPAREN, "'('")
        cond = self._parse_expression()
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_statement_as_block()
        return While(cond=cond, body=body, line=token.line, column=token.column)

    def _parse_for(self) -> For:
        token = self._expect(TokenType.KW_FOR, "'for'")
        self._expect(TokenType.LPAREN, "'('")
        init: Stmt | None = None
        if not self._check(TokenType.SEMICOLON):
            if self._peek().type in _DECL_START:
                qualifiers, base_type = self._parse_decl_prefix()
                name_token = self._expect(TokenType.IDENT, "identifier")
                decl = self._parse_single_declarator(qualifiers, base_type, name_token)
                init = decl
            else:
                init = self._parse_simple_statement()
        self._expect(TokenType.SEMICOLON, "';'")
        cond: Expr | None = None
        if not self._check(TokenType.SEMICOLON):
            cond = self._parse_expression()
        self._expect(TokenType.SEMICOLON, "';'")
        step: Stmt | None = None
        if not self._check(TokenType.RPAREN):
            step = self._parse_simple_statement()
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_statement_as_block()
        return For(
            init=init, cond=cond, step=step, body=body, line=token.line, column=token.column
        )

    def _parse_statement_as_block(self) -> Block:
        """Parse a statement and wrap it in a block if it is not one already."""
        token = self._peek()
        statements = self._parse_statement()
        if len(statements) == 1 and isinstance(statements[0], Block):
            return statements[0]
        return Block(statements=statements, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Expr:
        return self._parse_logical_or()

    def _parse_logical_or(self) -> Expr:
        expr = self._parse_logical_and()
        while self._check(TokenType.OR_OR):
            token = self._advance()
            right = self._parse_logical_and()
            expr = BinaryOp(op="||", left=expr, right=right, line=token.line, column=token.column)
        return expr

    def _parse_logical_and(self) -> Expr:
        expr = self._parse_bit_or()
        while self._check(TokenType.AND_AND):
            token = self._advance()
            right = self._parse_bit_or()
            expr = BinaryOp(op="&&", left=expr, right=right, line=token.line, column=token.column)
        return expr

    def _parse_bit_or(self) -> Expr:
        expr = self._parse_bit_xor()
        while self._check(TokenType.PIPE):
            token = self._advance()
            right = self._parse_bit_xor()
            expr = BinaryOp(op="|", left=expr, right=right, line=token.line, column=token.column)
        return expr

    def _parse_bit_xor(self) -> Expr:
        expr = self._parse_bit_and()
        while self._check(TokenType.CARET):
            token = self._advance()
            right = self._parse_bit_and()
            expr = BinaryOp(op="^", left=expr, right=right, line=token.line, column=token.column)
        return expr

    def _parse_bit_and(self) -> Expr:
        expr = self._parse_equality()
        while self._check(TokenType.AMP):
            token = self._advance()
            right = self._parse_equality()
            expr = BinaryOp(op="&", left=expr, right=right, line=token.line, column=token.column)
        return expr

    def _parse_equality(self) -> Expr:
        expr = self._parse_relational()
        while self._peek().type in (TokenType.EQ, TokenType.NE):
            token = self._advance()
            right = self._parse_relational()
            expr = BinaryOp(
                op=token.value, left=expr, right=right, line=token.line, column=token.column
            )
        return expr

    def _parse_relational(self) -> Expr:
        expr = self._parse_shift()
        while self._peek().type in (TokenType.LT, TokenType.LE, TokenType.GT, TokenType.GE):
            token = self._advance()
            right = self._parse_shift()
            expr = BinaryOp(
                op=token.value, left=expr, right=right, line=token.line, column=token.column
            )
        return expr

    def _parse_shift(self) -> Expr:
        expr = self._parse_additive()
        while self._peek().type in (TokenType.SHL, TokenType.SHR):
            token = self._advance()
            right = self._parse_additive()
            expr = BinaryOp(
                op=token.value, left=expr, right=right, line=token.line, column=token.column
            )
        return expr

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            token = self._advance()
            right = self._parse_multiplicative()
            expr = BinaryOp(
                op=token.value, left=expr, right=right, line=token.line, column=token.column
            )
        return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH, TokenType.PERCENT):
            token = self._advance()
            right = self._parse_unary()
            expr = BinaryOp(
                op=token.value, left=expr, right=right, line=token.line, column=token.column
            )
        return expr

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.type in (TokenType.MINUS, TokenType.NOT, TokenType.TILDE, TokenType.PLUS):
            self._advance()
            operand = self._parse_unary()
            if token.type is TokenType.PLUS:
                return operand
            return UnaryOp(op=token.value, operand=operand, line=token.line, column=token.column)
        if token.type is TokenType.LPAREN and self._peek(1).type in _DECL_START:
            # A C-style cast such as ``(long)detl`` — parse and discard the
            # type, the value semantics in MiniC are untyped integers.
            self._advance()
            self._parse_decl_prefix()
            self._expect(TokenType.RPAREN, "')'")
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenType.LBRACKET):
                if not isinstance(expr, Identifier):
                    token = self._peek()
                    raise ParseError(
                        "only named arrays can be indexed", token.line, token.column
                    )
                bracket = self._advance()
                index = self._parse_expression()
                self._expect(TokenType.RBRACKET, "']'")
                expr = Index(
                    array=expr.name, index=index, line=bracket.line, column=bracket.column
                )
            elif self._check(TokenType.LPAREN):
                if not isinstance(expr, Identifier):
                    token = self._peek()
                    raise ParseError("only named functions can be called", token.line, token.column)
                paren = self._advance()
                args: list[Expr] = []
                if not self._check(TokenType.RPAREN):
                    args.append(self._parse_expression())
                    while self._match(TokenType.COMMA):
                        args.append(self._parse_expression())
                self._expect(TokenType.RPAREN, "')'")
                expr = Call(name=expr.name, args=args, line=paren.line, column=paren.column)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.INT_LITERAL:
            self._advance()
            return IntLiteral(value=_parse_int(token.value), line=token.line, column=token.column)
        if token.type is TokenType.IDENT:
            self._advance()
            return Identifier(name=token.value, line=token.line, column=token.column)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        raise ParseError(f"unexpected token {token.value!r}", token.line, token.column)


def _parse_int(text: str) -> int:
    text = text.rstrip("uUlL")
    if text.lower().startswith("0x"):
        return int(text, 16)
    return int(text, 10)


def _require_constant(expr: Expr, context: Token) -> int:
    """Evaluate a constant expression used in a declaration."""
    value = _fold_constant(expr)
    if value is None:
        raise ParseError(
            "expected a constant expression", context.line, context.column
        )
    return value


def _fold_constant(expr: Expr) -> int | None:
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, UnaryOp):
        inner = _fold_constant(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "~":
            return ~inner
        if expr.op == "!":
            return int(not inner)
        return None
    if isinstance(expr, BinaryOp):
        left = _fold_constant(expr.left)
        right = _fold_constant(expr.right)
        if left is None or right is None:
            return None
        return _apply_binop(expr.op, left, right)
    return None


def _apply_binop(op: str, left: int, right: int) -> int | None:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left // right if right != 0 else None
    if op == "%":
        return left % right if right != 0 else None
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    return None


def parse_program(source: str) -> Program:
    """Parse MiniC ``source`` text into a :class:`Program` AST."""
    return Parser(tokenize(source)).parse()
