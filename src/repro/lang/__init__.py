"""MiniC front end.

MiniC is a small C-like language that is rich enough to express the
cache-relevant structure of the paper's benchmarks: global arrays with
initializers, scalar and array variables, ``for``/``while`` loops,
``if``/``else`` branches, function definitions and calls, and two
qualifiers that matter to the analysis:

* ``reg`` — the variable is register-allocated and never touches memory
  (the paper's ``reg char k`` in Figure 2);
* ``secret`` — the variable holds secret data; any array access whose
  index is tainted by a secret variable is flagged as *secret-indexed*
  and becomes a candidate side-channel source.

The public entry point is :func:`repro.lang.parse_program`.
"""

from repro.lang.ast import (
    ArrayDecl,
    Assign,
    BinaryOp,
    Block,
    Break,
    Call,
    Continue,
    ExprStatement,
    For,
    FunctionDef,
    Identifier,
    If,
    Index,
    IntLiteral,
    Program,
    Return,
    UnaryOp,
    VarDecl,
    While,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.typecheck import SymbolTable, TypeChecker, check_program

__all__ = [
    "ArrayDecl",
    "Assign",
    "BinaryOp",
    "Block",
    "Break",
    "Call",
    "Continue",
    "ExprStatement",
    "For",
    "FunctionDef",
    "Identifier",
    "If",
    "Index",
    "IntLiteral",
    "Lexer",
    "Parser",
    "Program",
    "Return",
    "SymbolTable",
    "TypeChecker",
    "UnaryOp",
    "VarDecl",
    "While",
    "check_program",
    "parse_program",
    "tokenize",
]
