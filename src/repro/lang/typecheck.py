"""Symbol resolution, size computation, and secret-taint analysis for MiniC.

The checker produces a :class:`ProgramInfo` that later phases (lowering,
memory layout, side-channel detection) consume:

* a global symbol table and one local table per function;
* the byte size of every variable and array;
* the set of *secret-tainted* symbols: symbols declared with the
  ``secret`` qualifier plus any symbol that is (transitively) assigned an
  expression mentioning a secret symbol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TypeError_
from repro.lang.ast import (
    ArrayDecl,
    Assign,
    BaseType,
    Block,
    Call,
    Expr,
    ExprStatement,
    For,
    FunctionDef,
    Identifier,
    If,
    Index,
    Program,
    Qualifiers,
    Return,
    Stmt,
    VarDecl,
    While,
    walk_expr,
    walk_statements,
)

#: Functions treated as pure intrinsics: calls to them are allowed without a
#: definition and produce no memory references.
INTRINSIC_FUNCTIONS = frozenset(
    {"my_abs", "abs", "min", "max", "nondet", "input", "assume", "assert"}
)


@dataclass(frozen=True)
class Symbol:
    """A resolved variable or array symbol."""

    name: str
    base_type: BaseType
    is_array: bool
    length: int
    qualifiers: Qualifiers
    is_global: bool
    is_param: bool = False

    @property
    def element_size(self) -> int:
        return self.base_type.size

    @property
    def size_bytes(self) -> int:
        """Total size in bytes occupied in memory (0 for ``reg`` symbols)."""
        if self.qualifiers.is_reg:
            return 0
        if self.is_array:
            return self.base_type.size * self.length
        return self.base_type.size

    @property
    def in_memory(self) -> bool:
        """Whether accesses to this symbol touch memory (and thus the cache)."""
        return not self.qualifiers.is_reg


class SymbolTable:
    """A simple two-level (global + function-local) symbol table."""

    def __init__(self, parent: "SymbolTable | None" = None):
        self.parent = parent
        self._symbols: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> None:
        if symbol.name in self._symbols:
            raise TypeError_(f"duplicate declaration of {symbol.name!r}")
        self._symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        if name in self._symbols:
            return self._symbols[name]
        if self.parent is not None:
            return self.parent.lookup(name)
        return None

    def local_symbols(self) -> list[Symbol]:
        return list(self._symbols.values())

    def all_symbols(self) -> list[Symbol]:
        symbols = list(self._symbols.values())
        if self.parent is not None:
            symbols = self.parent.all_symbols() + symbols
        return symbols

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None


@dataclass
class FunctionInfo:
    """Checker output for one function."""

    definition: FunctionDef
    table: SymbolTable


@dataclass
class ProgramInfo:
    """Checker output for a whole program."""

    program: Program
    globals_table: SymbolTable
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    secret_symbols: set[str] = field(default_factory=set)
    array_initializers: dict[str, list[int]] = field(default_factory=dict)

    def symbol(self, function: str, name: str) -> Symbol:
        info = self.functions.get(function)
        table = info.table if info is not None else self.globals_table
        symbol = table.lookup(name)
        if symbol is None:
            raise TypeError_(f"unknown symbol {name!r} in function {function!r}")
        return symbol

    def is_secret(self, name: str) -> bool:
        return name in self.secret_symbols


class TypeChecker:
    """Checks a program and builds its :class:`ProgramInfo`."""

    def __init__(self, program: Program):
        self.program = program
        self.info = ProgramInfo(program=program, globals_table=SymbolTable())

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check(self) -> ProgramInfo:
        self._check_globals()
        for function in self.program.functions:
            self._check_function(function)
        self._compute_secret_taint()
        return self.info

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _check_globals(self) -> None:
        for decl in self.program.globals:
            symbol = self._symbol_from_decl(decl, is_global=True)
            self.info.globals_table.declare(symbol)
            if isinstance(decl, ArrayDecl) and decl.init is not None:
                if len(decl.init) > decl.length:
                    raise TypeError_(
                        f"too many initializers for array {decl.name!r}",
                        decl.line,
                        decl.column,
                    )
                self.info.array_initializers[decl.name] = list(decl.init)

    def _check_function(self, function: FunctionDef) -> None:
        if function.name in self.info.functions:
            raise TypeError_(f"duplicate function {function.name!r}")
        table = SymbolTable(parent=self.info.globals_table)
        for param in function.params:
            table.declare(
                Symbol(
                    name=param.name,
                    base_type=param.base_type,
                    is_array=False,
                    length=1,
                    qualifiers=param.qualifiers,
                    is_global=False,
                    is_param=True,
                )
            )
        for stmt in walk_statements(function.body):
            if isinstance(stmt, (VarDecl, ArrayDecl)):
                table.declare(self._symbol_from_decl(stmt, is_global=False))
                if isinstance(stmt, ArrayDecl) and stmt.init is not None:
                    self.info.array_initializers[stmt.name] = list(stmt.init)
        self.info.functions[function.name] = FunctionInfo(definition=function, table=table)
        self._check_statement_uses(function, function.body, table)

    def _symbol_from_decl(self, decl: VarDecl | ArrayDecl, is_global: bool) -> Symbol:
        if isinstance(decl, ArrayDecl):
            if decl.length <= 0:
                raise TypeError_(
                    f"array {decl.name!r} must have a positive length", decl.line, decl.column
                )
            if decl.qualifiers.is_reg:
                raise TypeError_(
                    f"array {decl.name!r} cannot be register-allocated", decl.line, decl.column
                )
            return Symbol(
                name=decl.name,
                base_type=decl.base_type,
                is_array=True,
                length=decl.length,
                qualifiers=decl.qualifiers,
                is_global=is_global,
            )
        return Symbol(
            name=decl.name,
            base_type=decl.base_type,
            is_array=False,
            length=1,
            qualifiers=decl.qualifiers,
            is_global=is_global,
        )

    # ------------------------------------------------------------------
    # Use checking
    # ------------------------------------------------------------------
    def _check_statement_uses(
        self, function: FunctionDef, stmt: Stmt, table: SymbolTable
    ) -> None:
        if isinstance(stmt, Block):
            for child in stmt.statements:
                self._check_statement_uses(function, child, table)
        elif isinstance(stmt, (VarDecl, ArrayDecl)):
            if isinstance(stmt, VarDecl) and stmt.init is not None:
                self._check_expression_uses(stmt.init, table)
        elif isinstance(stmt, Assign):
            self._check_assign_target(stmt.target, table)
            self._check_expression_uses(stmt.value, table)
        elif isinstance(stmt, ExprStatement):
            self._check_expression_uses(stmt.expr, table)
        elif isinstance(stmt, If):
            self._check_expression_uses(stmt.cond, table)
            self._check_statement_uses(function, stmt.then_body, table)
            if stmt.else_body is not None:
                self._check_statement_uses(function, stmt.else_body, table)
        elif isinstance(stmt, While):
            self._check_expression_uses(stmt.cond, table)
            self._check_statement_uses(function, stmt.body, table)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self._check_statement_uses(function, stmt.init, table)
            if stmt.cond is not None:
                self._check_expression_uses(stmt.cond, table)
            if stmt.step is not None:
                self._check_statement_uses(function, stmt.step, table)
            self._check_statement_uses(function, stmt.body, table)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._check_expression_uses(stmt.value, table)

    def _check_assign_target(self, target: Expr, table: SymbolTable) -> None:
        if isinstance(target, Identifier):
            symbol = table.lookup(target.name)
            if symbol is None:
                raise TypeError_(f"assignment to undeclared {target.name!r}", target.line, target.column)
            if symbol.is_array:
                raise TypeError_(
                    f"cannot assign to array {target.name!r} as a whole", target.line, target.column
                )
        elif isinstance(target, Index):
            symbol = table.lookup(target.array)
            if symbol is None:
                raise TypeError_(f"indexing undeclared {target.array!r}", target.line, target.column)
            if not symbol.is_array:
                raise TypeError_(f"{target.array!r} is not an array", target.line, target.column)
            self._check_expression_uses(target.index, table)
        else:
            raise TypeError_("invalid assignment target", target.line, target.column)

    def _check_expression_uses(self, expr: Expr, table: SymbolTable) -> None:
        for node in walk_expr(expr):
            if isinstance(node, Identifier):
                symbol = table.lookup(node.name)
                if symbol is None:
                    raise TypeError_(f"use of undeclared {node.name!r}", node.line, node.column)
            elif isinstance(node, Index):
                symbol = table.lookup(node.array)
                if symbol is None:
                    raise TypeError_(f"indexing undeclared {node.array!r}", node.line, node.column)
                if not symbol.is_array:
                    raise TypeError_(f"{node.array!r} is not an array", node.line, node.column)
            elif isinstance(node, Call):
                if not self.program.has_function(node.name) and node.name not in INTRINSIC_FUNCTIONS:
                    # Unknown external calls are tolerated but flagged as
                    # intrinsics so the lowering treats them as opaque.
                    continue

    # ------------------------------------------------------------------
    # Secret taint
    # ------------------------------------------------------------------
    def _compute_secret_taint(self) -> None:
        """Propagate ``secret`` taint through assignments and parameter
        passing until a fixed point is reached."""
        secret: set[str] = set()
        for symbol in self.info.globals_table.local_symbols():
            if symbol.qualifiers.is_secret:
                secret.add(symbol.name)
        for info in self.info.functions.values():
            for symbol in info.table.local_symbols():
                if symbol.qualifiers.is_secret:
                    secret.add(symbol.name)

        changed = True
        while changed:
            changed = False
            for info in self.info.functions.values():
                for stmt in walk_statements(info.definition.body):
                    if isinstance(stmt, Assign):
                        if self._expr_is_tainted(stmt.value, secret):
                            target_name = _target_name(stmt.target)
                            if target_name is not None and target_name not in secret:
                                secret.add(target_name)
                                changed = True
                    elif isinstance(stmt, VarDecl) and stmt.init is not None:
                        if self._expr_is_tainted(stmt.init, secret) and stmt.name not in secret:
                            secret.add(stmt.name)
                            changed = True
                    elif isinstance(stmt, (ExprStatement, Return)):
                        pass
                # Parameter taint: a call ``f(e1, .., ek)`` taints f's i-th
                # parameter when the i-th argument is tainted.
                for stmt in walk_statements(info.definition.body):
                    for expr in _statement_expressions(stmt):
                        for node in walk_expr(expr):
                            if isinstance(node, Call) and self.program.has_function(node.name):
                                callee = self.program.function(node.name)
                                for param, arg in zip(callee.params, node.args):
                                    if (
                                        self._expr_is_tainted(arg, secret)
                                        and param.name not in secret
                                    ):
                                        secret.add(param.name)
                                        changed = True
        self.info.secret_symbols = secret

    @staticmethod
    def _expr_is_tainted(expr: Expr, secret: set[str]) -> bool:
        for node in walk_expr(expr):
            if isinstance(node, Identifier) and node.name in secret:
                return True
            if isinstance(node, Index) and node.array in secret:
                return True
        return False


def _target_name(target: Expr) -> str | None:
    if isinstance(target, Identifier):
        return target.name
    if isinstance(target, Index):
        return target.array
    return None


def _statement_expressions(stmt: Stmt) -> list[Expr]:
    if isinstance(stmt, Assign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ExprStatement):
        return [stmt.expr]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, For):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, VarDecl):
        return [stmt.init] if stmt.init is not None else []
    return []


def check_program(program: Program) -> ProgramInfo:
    """Type-check ``program`` and return its :class:`ProgramInfo`."""
    return TypeChecker(program).check()
