"""Intermediate representation and control-flow-graph substrate.

The IR is a conventional three-address code organised into basic blocks.
What makes it suitable for cache analysis is that every instruction
carries explicit :class:`~repro.ir.instructions.MemoryRef` objects
describing which program variables (and which array elements, when
statically known) it reads or writes, and every conditional branch
records the memory references its condition depends on — the information
needed by the paper's dynamic speculation-depth bounding (Section 6.2).
"""

from repro.ir.instructions import (
    BinOp,
    CallInstr,
    CondBranch,
    Const,
    Copy,
    Instruction,
    Jump,
    Load,
    MemoryRef,
    Operand,
    Return,
    Store,
    Temp,
    Terminator,
    UnOp,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG, Edge
from repro.ir.memory import BlockAccess, MemoryBlock, MemoryLayout
from repro.ir.lowering import lower_function, lower_program
from repro.ir.dominators import compute_dominators, compute_postdominators
from repro.ir.loops import Loop, find_natural_loops, infer_trip_count
from repro.ir.unroll import unroll_fixed_loops
from repro.ir.inline import inline_calls
from repro.ir.printer import format_cfg, format_instruction

__all__ = [
    "BasicBlock",
    "BinOp",
    "BlockAccess",
    "CFG",
    "CallInstr",
    "CondBranch",
    "Const",
    "Copy",
    "Edge",
    "Instruction",
    "Jump",
    "Load",
    "Loop",
    "MemoryBlock",
    "MemoryLayout",
    "MemoryRef",
    "Operand",
    "Return",
    "Store",
    "Temp",
    "Terminator",
    "UnOp",
    "compute_dominators",
    "compute_postdominators",
    "find_natural_loops",
    "format_cfg",
    "format_instruction",
    "infer_trip_count",
    "inline_calls",
    "lower_function",
    "lower_program",
    "unroll_fixed_loops",
]
