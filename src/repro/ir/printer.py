"""Human-readable dumps of the IR and CFG, and MiniC source emission.

The CFG formatters are a debugging / report aid.  :func:`program_to_source`
is load-bearing: the mitigation subsystem patches programs at the AST
level (inserting ``fence;`` statements) and re-emits compilable MiniC
source from the patched AST, which is what the analysis engine re-verifies.
The emitted text re-parses to the same AST shape (expressions are fully
parenthesised, so no precedence information is lost)."""

from __future__ import annotations

from repro.lang import ast
from repro.ir.cfg import CFG
from repro.ir.instructions import Instruction, Terminator

_TYPE_NAMES = {
    ast.BaseType.CHAR: "char",
    ast.BaseType.INT: "int",
    ast.BaseType.LONG: "long",
    ast.BaseType.VOID: "void",
}


def format_instruction(instruction: Instruction | Terminator) -> str:
    """Format a single instruction or terminator."""
    return str(instruction)


def format_block(cfg: CFG, name: str) -> str:
    block = cfg.block(name)
    lines = [f"{name}:  (preds: {', '.join(cfg.predecessors(name)) or 'none'})"]
    for instruction in block.instructions:
        lines.append(f"    {instruction}")
    if block.terminator is not None:
        lines.append(f"    {block.terminator}")
    return "\n".join(lines)


def format_cfg(cfg: CFG) -> str:
    """Format an entire CFG, blocks in reverse postorder."""
    header = f"function {cfg.name}({', '.join(cfg.params)})"
    parts = [header, "=" * len(header)]
    for name in cfg.reverse_postorder():
        parts.append(format_block(cfg, name))
    return "\n".join(parts)


# ----------------------------------------------------------------------
# MiniC source emission (AST -> compilable text)
# ----------------------------------------------------------------------
def format_expr(expr: ast.Expr) -> str:
    """Emit one expression, fully parenthesised.

    Parentheses carry no AST node of their own, so re-parsing the emitted
    text reproduces the expression tree exactly.
    """
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value) if expr.value >= 0 else f"({expr.value})"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Index):
        return f"{expr.array}[{format_expr(expr.index)}]"
    if isinstance(expr, ast.BinaryOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        # The space stops '-' '-' from lexing as '--'.
        return f"({expr.op} {format_expr(expr.operand)})"
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot emit expression {type(expr).__name__}")


def _qualifier_prefix(qualifiers: ast.Qualifiers) -> str:
    parts = []
    if qualifiers.is_const:
        parts.append("const")
    if qualifiers.is_secret:
        parts.append("secret")
    if qualifiers.is_reg:
        parts.append("reg")
    return " ".join(parts) + " " if parts else ""


def _format_decl(decl: "ast.VarDecl | ast.ArrayDecl") -> str:
    prefix = _qualifier_prefix(decl.qualifiers) + _TYPE_NAMES[decl.base_type]
    if isinstance(decl, ast.ArrayDecl):
        text = f"{prefix} {decl.name}[{decl.length}]"
        if decl.init is not None:
            values = ", ".join(str(value) for value in decl.init)
            text += f" = {{{values}}}"
        return text + ";"
    text = f"{prefix} {decl.name}"
    if decl.init is not None:
        text += f" = {format_expr(decl.init)}"
    return text + ";"


def _format_simple_statement(stmt: ast.Stmt) -> str:
    """A statement without trailing semicolon (for ``for`` headers)."""
    if isinstance(stmt, ast.Assign):
        return f"{format_expr(stmt.target)} = {format_expr(stmt.value)}"
    if isinstance(stmt, ast.ExprStatement):
        return format_expr(stmt.expr)
    if isinstance(stmt, (ast.VarDecl, ast.ArrayDecl)):
        return _format_decl(stmt)[:-1]
    raise TypeError(f"cannot emit {type(stmt).__name__} in a for header")


def _emit_statement(stmt: ast.Stmt, lines: list[str], indent: int) -> None:
    pad = "  " * indent
    if isinstance(stmt, ast.Block):
        lines.append(pad + "{")
        for child in stmt.statements:
            _emit_statement(child, lines, indent + 1)
        lines.append(pad + "}")
    elif isinstance(stmt, (ast.VarDecl, ast.ArrayDecl)):
        lines.append(pad + _format_decl(stmt))
    elif isinstance(stmt, ast.Assign):
        lines.append(f"{pad}{format_expr(stmt.target)} = {format_expr(stmt.value)};")
    elif isinstance(stmt, ast.ExprStatement):
        lines.append(f"{pad}{format_expr(stmt.expr)};")
    elif isinstance(stmt, ast.If):
        lines.append(f"{pad}if ({format_expr(stmt.cond)})")
        _emit_statement(stmt.then_body, lines, indent)
        if stmt.else_body is not None:
            lines.append(pad + "else")
            _emit_statement(stmt.else_body, lines, indent)
    elif isinstance(stmt, ast.While):
        lines.append(f"{pad}while ({format_expr(stmt.cond)})")
        _emit_statement(stmt.body, lines, indent)
    elif isinstance(stmt, ast.For):
        init = _format_simple_statement(stmt.init) if stmt.init is not None else ""
        cond = format_expr(stmt.cond) if stmt.cond is not None else ""
        step = _format_simple_statement(stmt.step) if stmt.step is not None else ""
        lines.append(f"{pad}for ({init}; {cond}; {step})")
        _emit_statement(stmt.body, lines, indent)
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            lines.append(pad + "return;")
        else:
            lines.append(f"{pad}return {format_expr(stmt.value)};")
    elif isinstance(stmt, ast.Break):
        lines.append(pad + "break;")
    elif isinstance(stmt, ast.Continue):
        lines.append(pad + "continue;")
    elif isinstance(stmt, ast.Fence):
        lines.append(pad + "fence;")
    else:
        raise TypeError(f"cannot emit statement {type(stmt).__name__}")


def program_to_source(program: ast.Program) -> str:
    """Emit a whole MiniC translation unit as compilable source text.

    ``parse_program(program_to_source(p))`` reproduces ``p``'s shape
    (locations aside), so AST-level rewrites — fence insertion in
    particular — round-trip through the normal front end.
    """
    lines: list[str] = []
    for decl in program.globals:
        lines.append(_format_decl(decl))
    for function in program.functions:
        if lines:
            lines.append("")
        params = ", ".join(
            f"{_qualifier_prefix(param.qualifiers)}{_TYPE_NAMES[param.base_type]} "
            f"{param.name}"
            for param in function.params
        )
        lines.append(f"{_TYPE_NAMES[function.return_type]} {function.name}({params})")
        _emit_statement(function.body, lines, 0)
    return "\n".join(lines) + "\n"


def format_memory_summary(cfg: CFG) -> str:
    """Summarise which symbols the function touches and how often."""
    counts: dict[str, int] = {}
    for ref in cfg.all_memory_refs():
        counts[ref.symbol] = counts.get(ref.symbol, 0) + 1
    lines = [f"memory accesses in {cfg.name}:"]
    for symbol, count in sorted(counts.items(), key=lambda item: (-item[1], item[0])):
        lines.append(f"  {symbol}: {count}")
    return "\n".join(lines)
