"""Human-readable dumps of the IR and CFG (debugging / report aid)."""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.instructions import Instruction, Terminator


def format_instruction(instruction: Instruction | Terminator) -> str:
    """Format a single instruction or terminator."""
    return str(instruction)


def format_block(cfg: CFG, name: str) -> str:
    block = cfg.block(name)
    lines = [f"{name}:  (preds: {', '.join(cfg.predecessors(name)) or 'none'})"]
    for instruction in block.instructions:
        lines.append(f"    {instruction}")
    if block.terminator is not None:
        lines.append(f"    {block.terminator}")
    return "\n".join(lines)


def format_cfg(cfg: CFG) -> str:
    """Format an entire CFG, blocks in reverse postorder."""
    header = f"function {cfg.name}({', '.join(cfg.params)})"
    parts = [header, "=" * len(header)]
    for name in cfg.reverse_postorder():
        parts.append(format_block(cfg, name))
    return "\n".join(parts)


def format_memory_summary(cfg: CFG) -> str:
    """Summarise which symbols the function touches and how often."""
    counts: dict[str, int] = {}
    for ref in cfg.all_memory_refs():
        counts[ref.symbol] = counts.get(ref.symbol, 0) + 1
    lines = [f"memory accesses in {cfg.name}:"]
    for symbol, count in sorted(counts.items(), key=lambda item: (-item[1], item[0])):
        lines.append(f"  {symbol}: {count}")
    return "\n".join(lines)
