"""IR instructions, operands, and memory references."""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Operands
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Operand:
    """Base class for instruction operands."""


@dataclass(frozen=True)
class Temp(Operand):
    """A virtual register (temporary)."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const(Operand):
    """An integer constant operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


# ----------------------------------------------------------------------
# Memory references
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MemoryRef:
    """A single memory access performed by an instruction.

    ``index_const`` is the element index when it is statically known
    (always ``0`` for scalars); ``None`` means the index is unknown at
    analysis time.  ``index_secret`` is set when the index expression is
    tainted by a ``secret`` variable, which is what the side-channel
    application looks for.
    """

    symbol: str
    is_write: bool = False
    index_const: int | None = 0
    index_secret: bool = False
    element_size: int = 4
    line: int = 0

    def __str__(self) -> str:
        mode = "store" if self.is_write else "load"
        if self.index_const is None:
            suffix = "[?]" if not self.index_secret else "[secret]"
        elif self.index_const == 0 and self.element_size == 0:
            suffix = ""
        else:
            suffix = f"[{self.index_const}]"
        return f"{mode} {self.symbol}{suffix}"


# ----------------------------------------------------------------------
# Instructions
# ----------------------------------------------------------------------
@dataclass
class Instruction:
    """Base class for non-terminator instructions."""

    line: int = field(default=0, kw_only=True)

    def memory_refs(self) -> tuple[MemoryRef, ...]:
        """Memory references performed by this instruction (possibly empty)."""
        return ()

    def defined_temp(self) -> Temp | None:
        return None

    def used_operands(self) -> tuple[Operand, ...]:
        return ()


@dataclass
class Load(Instruction):
    """Load a value from memory into a temporary.

    ``index_operand`` carries the dynamic element index (``None`` for
    scalars); the abstract analysis only looks at ``ref`` but the concrete
    simulator needs the runtime value to model the cache exactly.
    """

    dest: Temp = None  # type: ignore[assignment]
    ref: MemoryRef = None  # type: ignore[assignment]
    index_operand: Operand | None = None

    def memory_refs(self) -> tuple[MemoryRef, ...]:
        return (self.ref,)

    def defined_temp(self) -> Temp | None:
        return self.dest

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.index_operand,) if self.index_operand is not None else ()

    def __str__(self) -> str:
        return f"{self.dest} = {self.ref}"


@dataclass
class Store(Instruction):
    """Store a value from an operand into memory."""

    ref: MemoryRef = None  # type: ignore[assignment]
    value: Operand = None  # type: ignore[assignment]
    index_operand: Operand | None = None

    def memory_refs(self) -> tuple[MemoryRef, ...]:
        return (self.ref,)

    def used_operands(self) -> tuple[Operand, ...]:
        used: tuple[Operand, ...] = (self.value,)
        if self.index_operand is not None:
            used = used + (self.index_operand,)
        return used

    def __str__(self) -> str:
        return f"{self.ref} <- {self.value}"


@dataclass
class BinOp(Instruction):
    dest: Temp = None  # type: ignore[assignment]
    op: str = ""
    left: Operand = None  # type: ignore[assignment]
    right: Operand = None  # type: ignore[assignment]

    def defined_temp(self) -> Temp | None:
        return self.dest

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.dest} = {self.left} {self.op} {self.right}"


@dataclass
class UnOp(Instruction):
    dest: Temp = None  # type: ignore[assignment]
    op: str = ""
    operand: Operand = None  # type: ignore[assignment]

    def defined_temp(self) -> Temp | None:
        return self.dest

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op}{self.operand}"


@dataclass
class Copy(Instruction):
    dest: Temp = None  # type: ignore[assignment]
    src: Operand = None  # type: ignore[assignment]

    def defined_temp(self) -> Temp | None:
        return self.dest

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.src,)

    def __str__(self) -> str:
        return f"{self.dest} = {self.src}"


@dataclass
class Fence(Instruction):
    """A speculation barrier.

    Architecturally a no-op: it reads and writes nothing and touches no
    memory.  Its only semantics are microarchitectural — instructions
    after a fence never execute speculatively, so a speculative window
    (and a concrete mispredicted excursion) is truncated at the fence.
    The mitigation subsystem inserts these to close detected leaks.
    """

    def __str__(self) -> str:
        return "fence"


@dataclass
class CallInstr(Instruction):
    """A function call.

    Calls to user-defined functions are removed by the inliner; calls to
    intrinsics remain and are treated as opaque pure operations.
    """

    dest: Temp | None = None
    callee: str = ""
    args: tuple[Operand, ...] = ()

    def defined_temp(self) -> Temp | None:
        return self.dest

    def used_operands(self) -> tuple[Operand, ...]:
        return tuple(self.args)

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"{prefix}call {self.callee}({args})"


# ----------------------------------------------------------------------
# Terminators
# ----------------------------------------------------------------------
@dataclass
class Terminator:
    """Base class for basic-block terminators."""

    line: int = field(default=0, kw_only=True)

    def targets(self) -> tuple[str, ...]:
        return ()

    def memory_refs(self) -> tuple[MemoryRef, ...]:
        return ()


@dataclass
class Jump(Terminator):
    target: str = ""

    def targets(self) -> tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class CondBranch(Terminator):
    """A two-way conditional branch.

    ``cond_refs`` records the memory references that were loaded to
    evaluate the condition; the speculative analysis uses them to decide
    whether the branch resolves quickly (operands cached, bound ``bh``)
    or slowly (operands may miss, bound ``bm``).
    """

    cond: Operand = None  # type: ignore[assignment]
    true_target: str = ""
    false_target: str = ""
    cond_refs: tuple[MemoryRef, ...] = ()

    def targets(self) -> tuple[str, ...]:
        return (self.true_target, self.false_target)

    def memory_refs(self) -> tuple[MemoryRef, ...]:
        # The loads themselves were emitted as separate Load instructions;
        # cond_refs is metadata only and must not be double counted.
        return ()

    def __str__(self) -> str:
        return f"br {self.cond} ? {self.true_target} : {self.false_target}"


@dataclass
class Return(Terminator):
    value: Operand | None = None

    def __str__(self) -> str:
        if self.value is None:
            return "ret"
        return f"ret {self.value}"
