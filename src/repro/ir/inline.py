"""IR-level call inlining.

The paper analyses whole programs (a client harness calling a kernel such
as ``quantl``, Figure 10).  To keep the analysis intra-procedural we
inline every call to a user-defined function into the analysis entry
point.  Calls to intrinsics (``my_abs`` and friends) remain and are
treated as opaque pure operations.
"""

from __future__ import annotations

import copy

from repro.errors import LoweringError
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    BinOp,
    CallInstr,
    CondBranch,
    Const,
    Copy,
    Instruction,
    Jump,
    Load,
    MemoryRef,
    Operand,
    Return,
    Store,
    Temp,
    UnOp,
)
from repro.lang.typecheck import ProgramInfo

#: Hard ceiling on the number of call-site expansions (guards against
#: run-away recursion).
DEFAULT_MAX_EXPANSIONS = 200


def inline_calls(
    cfgs: dict[str, CFG],
    entry: str,
    info: ProgramInfo,
    max_expansions: int = DEFAULT_MAX_EXPANSIONS,
) -> CFG:
    """Return a copy of ``cfgs[entry]`` with user-function calls inlined."""
    if entry not in cfgs:
        raise LoweringError(f"unknown entry function {entry!r}")
    result = copy.deepcopy(cfgs[entry])
    expansions = 0
    while True:
        site = _find_call_site(result, cfgs)
        if site is None:
            break
        expansions += 1
        if expansions > max_expansions:
            raise LoweringError(
                f"inlining exceeded {max_expansions} expansions; "
                "recursive call chain suspected"
            )
        _inline_one(result, site, cfgs, info, expansions)
    result.validate()
    return result


def _find_call_site(cfg: CFG, cfgs: dict[str, CFG]) -> tuple[str, int] | None:
    """Return (block name, instruction index) of the first inlinable call."""
    for name in cfg.reachable_blocks():
        block = cfg.block(name)
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, CallInstr) and instruction.callee in cfgs:
                return (name, index)
    return None


def _inline_one(
    cfg: CFG,
    site: tuple[str, int],
    cfgs: dict[str, CFG],
    info: ProgramInfo,
    expansion_id: int,
) -> None:
    block_name, index = site
    block = cfg.block(block_name)
    call = block.instructions[index]
    assert isinstance(call, CallInstr)
    callee_cfg = cfgs[call.callee]
    prefix = f"inl{expansion_id}_"

    # 1. Split the block: the tail (after the call) becomes a new block.
    continuation = BasicBlock(
        name=f"{prefix}cont",
        instructions=block.instructions[index + 1 :],
        terminator=block.terminator,
    )
    cfg.add_block(continuation)
    block.instructions = block.instructions[:index]
    # The terminator is set below, after argument passing.

    # 2. Clone the callee with renamed blocks and temporaries.
    clone_blocks = _clone_callee(callee_cfg, prefix)

    # 3. Pass arguments.  In-memory parameters are written with a Store so
    #    the argument transfer itself shows up as a memory access (it does
    #    on real hardware: arguments spill to the stack / parameter slots).
    callee_info = info.functions.get(call.callee)
    params = callee_cfg.params
    for position, param_name in enumerate(params):
        arg: Operand = call.args[position] if position < len(call.args) else Const(0)
        symbol = callee_info.table.lookup(param_name) if callee_info else None
        if symbol is not None and symbol.in_memory:
            ref = MemoryRef(
                symbol=param_name,
                is_write=True,
                index_const=0,
                element_size=symbol.element_size,
                line=call.line,
            )
            block.append(Store(ref=ref, value=arg, line=call.line))
        else:
            block.append(Copy(dest=Temp(f"{prefix}r_{param_name}"), src=arg, line=call.line))
    block.terminator = Jump(target=f"{prefix}{callee_cfg.entry}", line=call.line)

    # 4. Wire return blocks of the clone to the continuation, materialising
    #    the return value into the call's destination temp.
    for clone in clone_blocks:
        terminator = clone.terminator
        if isinstance(terminator, Return):
            if call.dest is not None:
                value = terminator.value if terminator.value is not None else Const(0)
                clone.append(Copy(dest=call.dest, src=value, line=call.line))
            clone.terminator = Jump(target=continuation.name, line=call.line)
        cfg.add_block(clone)


def _clone_callee(callee: CFG, prefix: str) -> list[BasicBlock]:
    """Deep-copy the callee's reachable blocks, renaming blocks and temps."""
    clones: list[BasicBlock] = []
    for name in callee.reachable_blocks():
        original = callee.block(name)
        clone = BasicBlock(name=f"{prefix}{name}")
        for instruction in original.instructions:
            clone.append(_rename_instruction(copy.deepcopy(instruction), prefix))
        clone.terminator = _rename_terminator(copy.deepcopy(original.terminator), prefix)
        clones.append(clone)
    return clones


def _rename_temp(temp: Temp, prefix: str) -> Temp:
    return Temp(f"{prefix}{temp.name}")


def _rename_operand(operand: Operand, prefix: str) -> Operand:
    if isinstance(operand, Temp):
        return _rename_temp(operand, prefix)
    return operand


def _rename_instruction(instruction: Instruction, prefix: str) -> Instruction:
    if isinstance(instruction, Load):
        instruction.dest = _rename_temp(instruction.dest, prefix)
        if instruction.index_operand is not None:
            instruction.index_operand = _rename_operand(instruction.index_operand, prefix)
    elif isinstance(instruction, Store):
        instruction.value = _rename_operand(instruction.value, prefix)
        if instruction.index_operand is not None:
            instruction.index_operand = _rename_operand(instruction.index_operand, prefix)
    elif isinstance(instruction, BinOp):
        instruction.dest = _rename_temp(instruction.dest, prefix)
        instruction.left = _rename_operand(instruction.left, prefix)
        instruction.right = _rename_operand(instruction.right, prefix)
    elif isinstance(instruction, UnOp):
        instruction.dest = _rename_temp(instruction.dest, prefix)
        instruction.operand = _rename_operand(instruction.operand, prefix)
    elif isinstance(instruction, Copy):
        instruction.dest = _rename_temp(instruction.dest, prefix)
        instruction.src = _rename_operand(instruction.src, prefix)
    elif isinstance(instruction, CallInstr):
        if instruction.dest is not None:
            instruction.dest = _rename_temp(instruction.dest, prefix)
        instruction.args = tuple(_rename_operand(arg, prefix) for arg in instruction.args)
    return instruction


def _rename_terminator(terminator, prefix: str):
    if isinstance(terminator, Jump):
        terminator.target = f"{prefix}{terminator.target}"
    elif isinstance(terminator, CondBranch):
        terminator.cond = _rename_operand(terminator.cond, prefix)
        terminator.true_target = f"{prefix}{terminator.true_target}"
        terminator.false_target = f"{prefix}{terminator.false_target}"
    elif isinstance(terminator, Return):
        if terminator.value is not None:
            terminator.value = _rename_operand(terminator.value, prefix)
    return terminator
