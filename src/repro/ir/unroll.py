"""Full unrolling of fixed-trip-count loops.

The paper fully unrolls loops whose iteration count is statically known
("loops with fixed iteration number will be fully unrolled; only
unresolved loops will be widened", Section 6.3).  We perform the
transformation on the AST, before lowering: a ``for`` loop whose init,
condition and step match the counter pattern is replaced by a flat block
that re-assigns the counter to each constant value before a copy of the
body.  The lowering's constant propagation then resolves array indices
written with the counter to concrete memory blocks.

Loops containing ``break``/``continue`` (such as quantl's search loop in
Figure 8) are left untouched — exactly as in the paper's running example,
where the loop is *not* unwound and the analysis falls back to the
conservative fresh-line convention plus widening.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.lang import ast

#: Safety valve: loops with more iterations than this are not unrolled.
DEFAULT_MAX_ITERATIONS = 4096


@dataclass
class UnrollStats:
    """Statistics describing what the pass did (useful in reports/tests)."""

    loops_seen: int = 0
    loops_unrolled: int = 0
    iterations_emitted: int = 0


def unroll_fixed_loops(
    program: ast.Program, max_iterations: int = DEFAULT_MAX_ITERATIONS
) -> tuple[ast.Program, UnrollStats]:
    """Return a copy of ``program`` with fixed-trip-count loops unrolled."""
    stats = UnrollStats()
    new_program = copy.deepcopy(program)
    for function in new_program.functions:
        function.body = _unroll_block(function.body, max_iterations, stats)
    return new_program, stats


def _unroll_block(block: ast.Block, max_iterations: int, stats: UnrollStats) -> ast.Block:
    new_statements: list[ast.Stmt] = []
    for stmt in block.statements:
        new_statements.extend(_unroll_statement(stmt, max_iterations, stats))
    return ast.Block(statements=new_statements, line=block.line, column=block.column)


def _unroll_statement(
    stmt: ast.Stmt, max_iterations: int, stats: UnrollStats
) -> list[ast.Stmt]:
    if isinstance(stmt, ast.Block):
        return [_unroll_block(stmt, max_iterations, stats)]
    if isinstance(stmt, ast.If):
        stmt = copy.deepcopy(stmt)
        stmt.then_body = _unroll_block(stmt.then_body, max_iterations, stats)
        if stmt.else_body is not None:
            stmt.else_body = _unroll_block(stmt.else_body, max_iterations, stats)
        return [stmt]
    if isinstance(stmt, ast.While):
        stmt = copy.deepcopy(stmt)
        stmt.body = _unroll_block(stmt.body, max_iterations, stats)
        return [stmt]
    if isinstance(stmt, ast.For):
        return _unroll_for(stmt, max_iterations, stats)
    return [stmt]


def _unroll_for(stmt: ast.For, max_iterations: int, stats: UnrollStats) -> list[ast.Stmt]:
    stats.loops_seen += 1
    # First unroll nested loops inside the body so iteration counts compose.
    body = _unroll_block(stmt.body, max_iterations, stats)
    inner = ast.For(
        init=stmt.init,
        cond=stmt.cond,
        step=stmt.step,
        body=body,
        line=stmt.line,
        column=stmt.column,
    )
    plan = _plan_unroll(inner, max_iterations)
    if plan is None:
        return [inner]
    counter, values, init_stmt = plan
    stats.loops_unrolled += 1
    stats.iterations_emitted += len(values)
    result: list[ast.Stmt] = []
    if init_stmt is not None:
        result.append(init_stmt)
    for value in values:
        result.append(_assign_counter(counter, value, stmt))
        result.append(copy.deepcopy(body))
    # Leave the counter at its final (loop-exiting) value for code after the
    # loop that reads it.
    final_value = values[-1] + (values[1] - values[0]) if len(values) > 1 else None
    if values and final_value is None:
        final_value = values[0] + 1
    if final_value is not None:
        result.append(_assign_counter(counter, final_value, stmt))
    return result


def _assign_counter(counter: str, value: int, origin: ast.For) -> ast.Assign:
    return ast.Assign(
        target=ast.Identifier(name=counter, line=origin.line, column=origin.column),
        value=ast.IntLiteral(value=value, line=origin.line, column=origin.column),
        line=origin.line,
        column=origin.column,
    )


def _plan_unroll(
    stmt: ast.For, max_iterations: int
) -> tuple[str, list[int], ast.Stmt | None] | None:
    """Return (counter name, iteration values, declaration to keep) or None."""
    if _contains_loop_escape(stmt.body):
        return None
    counter, start, init_stmt = _parse_init(stmt.init)
    if counter is None or start is None:
        return None
    bound = _parse_condition(stmt.cond, counter)
    if bound is None:
        return None
    op, limit = bound
    step = _parse_step(stmt.step, counter)
    if step is None or step == 0:
        return None
    if _assigns_variable(stmt.body, counter):
        return None
    values: list[int] = []
    value = start
    while len(values) <= max_iterations:
        if op == "<" and not value < limit:
            break
        if op == "<=" and not value <= limit:
            break
        if op == ">" and not value > limit:
            break
        if op == ">=" and not value >= limit:
            break
        if op == "!=" and not value != limit:
            break
        values.append(value)
        value += step
    if not values or len(values) > max_iterations:
        return None
    return counter, values, init_stmt


def _contains_loop_escape(body: ast.Block) -> bool:
    """True if the body contains a break/continue that belongs to this loop."""
    for stmt in body.statements:
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Block) and _contains_loop_escape(stmt):
            return True
        if isinstance(stmt, ast.If):
            if _contains_loop_escape(stmt.then_body):
                return True
            if stmt.else_body is not None and _contains_loop_escape(stmt.else_body):
                return True
        # break/continue inside a nested loop belongs to that loop, so
        # nested While/For bodies are intentionally not descended into.
    return False


def _parse_init(init: ast.Stmt | None) -> tuple[str | None, int | None, ast.Stmt | None]:
    if isinstance(init, ast.Assign) and isinstance(init.target, ast.Identifier):
        value = _fold(init.value)
        return (init.target.name, value, None)
    if isinstance(init, ast.VarDecl) and init.init is not None:
        value = _fold(init.init)
        declaration = ast.VarDecl(
            name=init.name,
            base_type=init.base_type,
            qualifiers=init.qualifiers,
            init=None,
            line=init.line,
            column=init.column,
        )
        return (init.name, value, declaration)
    return (None, None, None)


def _parse_condition(cond: ast.Expr | None, counter: str) -> tuple[str, int] | None:
    if not isinstance(cond, ast.BinaryOp):
        return None
    if not isinstance(cond.left, ast.Identifier) or cond.left.name != counter:
        return None
    if cond.op not in ("<", "<=", ">", ">=", "!="):
        return None
    limit = _fold(cond.right)
    if limit is None:
        return None
    return cond.op, limit


def _parse_step(step: ast.Stmt | None, counter: str) -> int | None:
    if not isinstance(step, ast.Assign):
        return None
    if not isinstance(step.target, ast.Identifier) or step.target.name != counter:
        return None
    value = step.value
    if not isinstance(value, ast.BinaryOp) or value.op not in ("+", "-"):
        return None
    if not isinstance(value.left, ast.Identifier) or value.left.name != counter:
        return None
    delta = _fold(value.right)
    if delta is None:
        return None
    return delta if value.op == "+" else -delta


def _assigns_variable(body: ast.Block, name: str) -> bool:
    for stmt in ast.walk_statements(body):
        if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Identifier):
            if stmt.target.name == name:
                return True
        if isinstance(stmt, (ast.VarDecl,)) and stmt.name == name:
            return True
    return False


def _fold(expr: ast.Expr) -> int | None:
    """Constant-fold a pure expression (no variables)."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp):
        inner = _fold(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "~":
            return ~inner
        if expr.op == "!":
            return int(not inner)
        return None
    if isinstance(expr, ast.BinaryOp):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else None,
                "%": lambda: left % right if right else None,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
            }[expr.op]()
        except KeyError:
            return None
    return None
