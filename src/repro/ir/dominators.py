"""Dominator and post-dominator computation.

The speculative VCFG construction needs post-dominators to find the
control-flow merge point of a branch (where Just-in-Time merging converts
the speculative state back into the normal state), and natural-loop
detection needs dominators to identify back edges.
"""

from __future__ import annotations

from repro.ir.cfg import CFG

#: Name of the virtual exit node used for post-dominator computation when a
#: function has several return blocks.
VIRTUAL_EXIT = "__virtual_exit__"


def _iterative_dominators(
    nodes: list[str],
    entry: str,
    predecessors: dict[str, list[str]],
) -> dict[str, set[str]]:
    """Classic iterative dominator-set computation."""
    all_nodes = set(nodes)
    dom: dict[str, set[str]] = {node: set(all_nodes) for node in nodes}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == entry:
                continue
            preds = [pred for pred in predecessors.get(node, []) if pred in all_nodes]
            if preds:
                new_dom = set(all_nodes)
                for pred in preds:
                    new_dom &= dom[pred]
            else:
                new_dom = set()
            new_dom.add(node)
            if new_dom != dom[node]:
                dom[node] = new_dom
                changed = True
    return dom


def compute_dominators(cfg: CFG) -> dict[str, set[str]]:
    """Return, for every reachable block, the set of blocks dominating it."""
    nodes = cfg.reachable_blocks()
    predecessors = {node: cfg.predecessors(node) for node in nodes}
    return _iterative_dominators(nodes, cfg.entry, predecessors)


def immediate_dominators(cfg: CFG) -> dict[str, str | None]:
    """Return the immediate dominator of every reachable block."""
    dom = compute_dominators(cfg)
    idom: dict[str, str | None] = {}
    for node, dominators in dom.items():
        strict = dominators - {node}
        idom[node] = None
        for candidate in strict:
            # The immediate dominator is the strict dominator that is
            # dominated by every other strict dominator.
            if all(candidate in dom[other] for other in strict):
                idom[node] = candidate
                break
    return idom


def compute_postdominators(cfg: CFG) -> dict[str, set[str]]:
    """Return, for every reachable block, the set of blocks post-dominating it.

    A virtual exit node (``VIRTUAL_EXIT``) is used to join all return
    blocks; it appears in the result sets but is not a real block.
    """
    nodes = cfg.reachable_blocks()
    exits = [node for node in cfg.exit_blocks() if node in nodes]
    # Build the reverse graph including the virtual exit.
    reverse_succ: dict[str, list[str]] = {node: [] for node in nodes}
    reverse_succ[VIRTUAL_EXIT] = []
    for node in nodes:
        for successor in cfg.successors(node):
            if successor in reverse_succ:
                reverse_succ[successor].append(node)
    for exit_node in exits:
        reverse_succ[exit_node].append(VIRTUAL_EXIT)
    # In the reversed graph "predecessors" are the original successors plus
    # the virtual-exit wiring above.
    all_nodes = nodes + [VIRTUAL_EXIT]
    predecessors_in_reverse: dict[str, list[str]] = {node: [] for node in all_nodes}
    for node in nodes:
        successors = list(cfg.successors(node))
        if node in exits:
            successors.append(VIRTUAL_EXIT)
        predecessors_in_reverse[node] = successors
    predecessors_in_reverse[VIRTUAL_EXIT] = []
    return _iterative_dominators(all_nodes, VIRTUAL_EXIT, predecessors_in_reverse)


def immediate_postdominator(cfg: CFG, block: str) -> str | None:
    """Return the nearest real block that post-dominates ``block``.

    Returns ``None`` when the only post-dominator is the virtual exit
    (i.e. the branch never reconverges before returning).
    """
    pdom = compute_postdominators(cfg)
    candidates = pdom.get(block, set()) - {block, VIRTUAL_EXIT}
    if not candidates:
        return None
    # The immediate post-dominator is the candidate post-dominated by all
    # other candidates.
    for candidate in candidates:
        if all(candidate in pdom[other] for other in candidates if other != candidate):
            return candidate
    return None


def common_postdominator(cfg: CFG, left: str, right: str) -> str | None:
    """Return the nearest block post-dominating both ``left`` and ``right``."""
    pdom = compute_postdominators(cfg)
    common = (pdom.get(left, set()) & pdom.get(right, set())) - {VIRTUAL_EXIT}
    common -= {left, right}
    if not common:
        return None
    for candidate in common:
        if all(candidate in pdom[other] for other in common if other != candidate):
            return candidate
    # Fall back to any common post-dominator (the analysis only needs a
    # sound merge point, not necessarily the nearest one).
    return sorted(common)[0]
