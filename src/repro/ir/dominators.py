"""Dominator and post-dominator computation.

The speculative VCFG construction needs post-dominators to find the
control-flow merge point of a branch (where Just-in-Time merging converts
the speculative state back into the normal state), and natural-loop
detection needs dominators to identify back edges.
"""

from __future__ import annotations

from repro.ir.cfg import CFG

#: Name of the virtual exit node used for post-dominator computation when a
#: function has several return blocks.
VIRTUAL_EXIT = "__virtual_exit__"


def _iterative_dominators(
    nodes: list[str],
    entry: str,
    predecessors: dict[str, list[str]],
) -> dict[str, set[str]]:
    """Classic iterative dominator-set computation."""
    all_nodes = set(nodes)
    dom: dict[str, set[str]] = {node: set(all_nodes) for node in nodes}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == entry:
                continue
            preds = [pred for pred in predecessors.get(node, []) if pred in all_nodes]
            if preds:
                new_dom = set(all_nodes)
                for pred in preds:
                    new_dom &= dom[pred]
            else:
                new_dom = set()
            new_dom.add(node)
            if new_dom != dom[node]:
                dom[node] = new_dom
                changed = True
    return dom


def compute_dominators(cfg: CFG) -> dict[str, set[str]]:
    """Return, for every reachable block, the set of blocks dominating it."""
    nodes = cfg.reachable_blocks()
    predecessors = {node: cfg.predecessors(node) for node in nodes}
    return _iterative_dominators(nodes, cfg.entry, predecessors)


def immediate_dominators(cfg: CFG) -> dict[str, str | None]:
    """Return the immediate dominator of every reachable block.

    The strict dominators of a node are totally ordered by dominance; the
    immediate dominator is the *nearest* one — the candidate that every
    other strict dominator dominates.
    """
    dom = compute_dominators(cfg)
    idom: dict[str, str | None] = {}
    for node, dominators in dom.items():
        strict = dominators - {node}
        idom[node] = _nearest_in_chain(strict, dom)
    return idom


def _nearest_in_chain(
    candidates: set[str], relation: dict[str, set[str]]
) -> str | None:
    """The element of ``candidates`` that all other candidates (strictly)
    relate to — i.e. the nearest strict (post)dominator, the bottom of the
    chain.  ``relation[x]`` is the set of nodes (post)dominating ``x``.

    Returns None when ``candidates`` is empty or does not form a chain
    (which cannot happen for the (post)dominator sets of a node computed
    over a graph where every node reaches the (virtual) root).
    """
    for candidate in sorted(candidates):
        if all(
            other in relation[candidate]
            for other in candidates
            if other != candidate
        ):
            return candidate
    return None


def compute_postdominators(cfg: CFG) -> dict[str, set[str]]:
    """Return, for every reachable block, the set of blocks post-dominating it.

    A virtual exit node (``VIRTUAL_EXIT``) is used to join all return
    blocks; it appears in the result sets but is not a real block.
    """
    nodes = cfg.reachable_blocks()
    exits = [node for node in cfg.exit_blocks() if node in nodes]
    # Build the reverse graph including the virtual exit.
    reverse_succ: dict[str, list[str]] = {node: [] for node in nodes}
    reverse_succ[VIRTUAL_EXIT] = []
    for node in nodes:
        for successor in cfg.successors(node):
            if successor in reverse_succ:
                reverse_succ[successor].append(node)
    for exit_node in exits:
        reverse_succ[exit_node].append(VIRTUAL_EXIT)
    # In the reversed graph "predecessors" are the original successors plus
    # the virtual-exit wiring above.
    all_nodes = nodes + [VIRTUAL_EXIT]
    predecessors_in_reverse: dict[str, list[str]] = {node: [] for node in all_nodes}
    for node in nodes:
        successors = list(cfg.successors(node))
        if node in exits:
            successors.append(VIRTUAL_EXIT)
        predecessors_in_reverse[node] = successors
    predecessors_in_reverse[VIRTUAL_EXIT] = []
    return _iterative_dominators(all_nodes, VIRTUAL_EXIT, predecessors_in_reverse)


def _exit_reaching_postdominators(cfg: CFG) -> tuple[dict[str, set[str]], set[str]]:
    """Postdominator sets computed over the *exit-reaching* subgraph only.

    Returns ``(pdom, can_reach_exit)``.  Blocks that cannot reach any
    return are excluded from the computation entirely: running the
    iterative algorithm over the full graph leaves the doomed blocks'
    sets at their ``all_nodes`` initialisation, and those polluted sets
    do not form chains, so any selection from them (such as the
    historical ``sorted(candidates)[0]`` fallback) returns an arbitrary
    block that need not postdominate anything.
    """
    nodes = cfg.reachable_blocks()
    node_set = set(nodes)
    exits = [node for node in cfg.exit_blocks() if node in node_set]
    # Backward reachability: which blocks can reach an exit at all.
    can_reach_exit: set[str] = set(exits)
    stack = list(exits)
    while stack:
        node = stack.pop()
        for predecessor in cfg.predecessors(node):
            if predecessor in node_set and predecessor not in can_reach_exit:
                can_reach_exit.add(predecessor)
                stack.append(predecessor)
    sub_nodes = [node for node in nodes if node in can_reach_exit]
    all_nodes = sub_nodes + [VIRTUAL_EXIT]
    predecessors_in_reverse: dict[str, list[str]] = {VIRTUAL_EXIT: []}
    for node in sub_nodes:
        successors = [s for s in cfg.successors(node) if s in can_reach_exit]
        if node in exits:
            successors.append(VIRTUAL_EXIT)
        predecessors_in_reverse[node] = successors
    pdom = _iterative_dominators(all_nodes, VIRTUAL_EXIT, predecessors_in_reverse)
    return pdom, can_reach_exit


def postdominator_tree(cfg: CFG) -> dict[str, str | None]:
    """Return the immediate postdominator of every reachable block.

    Computed over the exit-reaching subgraph (see
    :func:`_exit_reaching_postdominators`): a block that cannot reach any
    return (e.g. inside an infinite loop) has no postdominators at all
    and maps to None.

    For exit-reaching blocks the strict postdominators form a chain and
    the immediate one — the *nearest*, i.e. the first control-flow point
    every path from the block to the exit must cross — is the candidate
    that every other candidate postdominates.
    """
    pdom, can_reach_exit = _exit_reaching_postdominators(cfg)
    tree: dict[str, str | None] = {}
    for node in cfg.reachable_blocks():
        if node not in can_reach_exit:
            tree[node] = None
            continue
        candidates = pdom[node] - {node, VIRTUAL_EXIT}
        tree[node] = _nearest_in_chain(candidates, pdom)
    return tree


def immediate_postdominator(cfg: CFG, block: str) -> str | None:
    """Return the nearest real block that post-dominates ``block``.

    Returns ``None`` when the only post-dominator is the virtual exit
    (i.e. the branch never reconverges before returning) or when
    ``block`` cannot reach any exit.
    """
    return postdominator_tree(cfg).get(block)


def common_postdominator(cfg: CFG, left: str, right: str) -> str | None:
    """Return the nearest block post-dominating both ``left`` and ``right``.

    None when either block cannot reach an exit (its postdominator set is
    empty) or when the only common postdominator is the virtual exit.
    The common postdominators are the intersection of two chains and so
    form a chain themselves; no arbitrary fallback is needed.
    """
    pdom, can_reach_exit = _exit_reaching_postdominators(cfg)
    if left not in can_reach_exit or right not in can_reach_exit:
        return None
    common = (pdom[left] & pdom[right]) - {VIRTUAL_EXIT, left, right}
    if not common:
        return None
    return _nearest_in_chain(common, pdom)
