"""Lowering from the MiniC AST to the basic-block IR.

The lowerer performs light constant folding and constant propagation
(tracking known constant values of scalar variables within straight-line
regions) so that array indices written with loop counters of fully
unrolled loops resolve to concrete memory blocks.  Indices that remain
unknown produce :class:`MemoryRef` objects with ``index_const=None``,
which the cache analysis treats with the paper's conservative
fresh-line-per-access convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoweringError
from repro.lang import ast
from repro.lang.typecheck import INTRINSIC_FUNCTIONS, ProgramInfo, Symbol
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    BinOp,
    CallInstr,
    CondBranch,
    Const,
    Copy,
    Fence,
    Jump,
    Load,
    MemoryRef,
    Operand,
    Return,
    Store,
    Temp,
    UnOp,
)

_FOLDABLE_OPS = {
    "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
    "<", "<=", ">", ">=", "==", "!=", "&&", "||",
}


def _fold(op: str, left: int, right: int) -> int | None:
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return int(left / right) if right != 0 else None
        if op == "%":
            return left - int(left / right) * right if right != 0 else None
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "&&":
            return int(bool(left) and bool(right))
        if op == "||":
            return int(bool(left) or bool(right))
    except ValueError:
        return None
    return None


@dataclass
class _ExprValue:
    """Result of lowering an expression."""

    operand: Operand
    const: int | None = None
    refs: frozenset[MemoryRef] = field(default_factory=frozenset)


class FunctionLowerer:
    """Lowers one :class:`FunctionDef` into a :class:`CFG`."""

    def __init__(self, function: ast.FunctionDef, info: ProgramInfo):
        self.function = function
        self.info = info
        func_info = info.functions.get(function.name)
        if func_info is None:
            raise LoweringError(f"function {function.name!r} was not type-checked")
        self.table = func_info.table
        self.cfg = CFG(
            name=function.name,
            entry="entry",
            params=[param.name for param in function.params],
        )
        self._temp_counter = 0
        self._block_counter = 0
        self._current = self.cfg.add_block(BasicBlock("entry"))
        # Known constant values of scalar variables (both reg and in-memory).
        self._const_env: dict[str, int] = {}
        # Known constant values of temporaries.
        self._temp_const: dict[Temp, int] = {}
        # Dedicated temporaries backing ``reg`` variables and parameters that
        # are register allocated.
        self._reg_temps: dict[str, Temp] = {}
        # (break target, continue target) for enclosing loops.
        self._loop_stack: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def lower(self) -> CFG:
        self._lower_block(self.function.body)
        if not self._current.is_terminated:
            self._current.terminator = Return(value=None)
        self._prune_unreachable()
        self.cfg.validate()
        return self.cfg

    # ------------------------------------------------------------------
    # Fresh names
    # ------------------------------------------------------------------
    def _new_temp(self) -> Temp:
        self._temp_counter += 1
        return Temp(f"t{self._temp_counter}")

    def _new_block(self, hint: str) -> BasicBlock:
        self._block_counter += 1
        return self.cfg.add_block(BasicBlock(f"{hint}{self._block_counter}"))

    def _set_current(self, block: BasicBlock) -> None:
        self._current = block

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------
    def _symbol(self, name: str, node: ast.Node) -> Symbol:
        symbol = self.table.lookup(name)
        if symbol is None:
            raise LoweringError(f"unknown symbol {name!r} at line {node.line}")
        return symbol

    def _reg_temp(self, name: str) -> Temp:
        if name not in self._reg_temps:
            self._reg_temps[name] = Temp(f"r_{name}")
        return self._reg_temps[name]

    def _index_is_secret(self, index: ast.Expr) -> bool:
        for node in ast.walk_expr(index):
            if isinstance(node, ast.Identifier) and self.info.is_secret(node.name):
                return True
            if isinstance(node, ast.Index) and self.info.is_secret(node.array):
                return True
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._lower_statement(stmt)

    def _lower_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._lower_assign_to_scalar(stmt.name, stmt.init, stmt)
        elif isinstance(stmt, ast.ArrayDecl):
            # Local array declarations generate no code; their contents are
            # whatever memory held before (matching an uninitialised C array).
            pass
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStatement):
            self._lower_expression(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Fence):
            self._current.append(Fence(line=stmt.line))
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._lower_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._lower_continue(stmt)
        else:
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.target, ast.Identifier):
            self._lower_assign_to_scalar(stmt.target.name, stmt.value, stmt)
        elif isinstance(stmt.target, ast.Index):
            self._lower_assign_to_element(stmt.target, stmt.value, stmt)
        else:
            raise LoweringError(f"invalid assignment target at line {stmt.line}")

    def _lower_assign_to_scalar(self, name: str, value: ast.Expr, node: ast.Node) -> None:
        symbol = self._symbol(name, node)
        result = self._lower_expression(value)
        if symbol.in_memory:
            ref = MemoryRef(
                symbol=name,
                is_write=True,
                index_const=0,
                element_size=symbol.element_size,
                line=node.line,
            )
            self._current.append(Store(ref=ref, value=result.operand, line=node.line))
        else:
            dest = self._reg_temp(name)
            self._current.append(Copy(dest=dest, src=result.operand, line=node.line))
        if result.const is not None:
            self._const_env[name] = result.const
        else:
            self._const_env.pop(name, None)

    def _lower_assign_to_element(self, target: ast.Index, value: ast.Expr, node: ast.Node) -> None:
        symbol = self._symbol(target.array, node)
        if not symbol.is_array:
            raise LoweringError(f"{target.array!r} is not an array (line {node.line})")
        index = self._lower_expression(target.index)
        result = self._lower_expression(value)
        ref = MemoryRef(
            symbol=target.array,
            is_write=True,
            index_const=index.const,
            index_secret=self._index_is_secret(target.index),
            element_size=symbol.element_size,
            line=node.line,
        )
        if symbol.in_memory:
            self._current.append(
                Store(
                    ref=ref,
                    value=result.operand,
                    index_operand=index.operand,
                    line=node.line,
                )
            )

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_expression(stmt.cond)
        then_block = self._new_block("then")
        join_block = self._new_block("join")
        else_block = self._new_block("else") if stmt.else_body is not None else join_block
        self._current.terminator = CondBranch(
            cond=cond.operand,
            true_target=then_block.name,
            false_target=else_block.name,
            cond_refs=tuple(sorted(cond.refs, key=str)),
            line=stmt.line,
        )
        env_before = dict(self._const_env)

        self._set_current(then_block)
        self._const_env = dict(env_before)
        self._lower_block(stmt.then_body)
        env_after_then = dict(self._const_env)
        if not self._current.is_terminated:
            self._current.terminator = Jump(target=join_block.name, line=stmt.line)

        env_after_else = dict(env_before)
        if stmt.else_body is not None:
            self._set_current(else_block)
            self._const_env = dict(env_before)
            self._lower_block(stmt.else_body)
            env_after_else = dict(self._const_env)
            if not self._current.is_terminated:
                self._current.terminator = Jump(target=join_block.name, line=stmt.line)

        self._set_current(join_block)
        self._const_env = {
            name: value
            for name, value in env_after_then.items()
            if env_after_else.get(name) == value
        }
        self._temp_const = {}

    def _lower_while(self, stmt: ast.While) -> None:
        header = self._new_block("while.header")
        body = self._new_block("while.body")
        exit_block = self._new_block("while.exit")
        self._current.terminator = Jump(target=header.name, line=stmt.line)

        self._invalidate_assigned(stmt.body)
        self._set_current(header)
        cond = self._lower_expression(stmt.cond)
        header_exit = self._current  # condition lowering never splits blocks
        header_exit.terminator = CondBranch(
            cond=cond.operand,
            true_target=body.name,
            false_target=exit_block.name,
            cond_refs=tuple(sorted(cond.refs, key=str)),
            line=stmt.line,
        )

        self._loop_stack.append((exit_block.name, header.name))
        self._set_current(body)
        self._lower_block(stmt.body)
        if not self._current.is_terminated:
            self._current.terminator = Jump(target=header.name, line=stmt.line)
        self._loop_stack.pop()

        self._set_current(exit_block)
        self._invalidate_assigned(stmt.body)
        self._temp_const = {}

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._lower_statement(stmt.init)
        header = self._new_block("for.header")
        body = self._new_block("for.body")
        step_block = self._new_block("for.step")
        exit_block = self._new_block("for.exit")
        self._current.terminator = Jump(target=header.name, line=stmt.line)

        loop_body_and_step = ast.Block(statements=[stmt.body] + ([stmt.step] if stmt.step else []))
        self._invalidate_assigned(loop_body_and_step)

        self._set_current(header)
        if stmt.cond is not None:
            cond = self._lower_expression(stmt.cond)
            self._current.terminator = CondBranch(
                cond=cond.operand,
                true_target=body.name,
                false_target=exit_block.name,
                cond_refs=tuple(sorted(cond.refs, key=str)),
                line=stmt.line,
            )
        else:
            self._current.terminator = Jump(target=body.name, line=stmt.line)

        self._loop_stack.append((exit_block.name, step_block.name))
        self._set_current(body)
        self._lower_block(stmt.body)
        if not self._current.is_terminated:
            self._current.terminator = Jump(target=step_block.name, line=stmt.line)
        self._loop_stack.pop()

        self._set_current(step_block)
        if stmt.step is not None:
            self._lower_statement(stmt.step)
        if not self._current.is_terminated:
            self._current.terminator = Jump(target=header.name, line=stmt.line)

        self._set_current(exit_block)
        self._invalidate_assigned(loop_body_and_step)
        self._temp_const = {}

    def _lower_return(self, stmt: ast.Return) -> None:
        operand: Operand | None = None
        if stmt.value is not None:
            operand = self._lower_expression(stmt.value).operand
        self._current.terminator = Return(value=operand, line=stmt.line)
        self._set_current(self._new_block("dead"))

    def _lower_break(self, stmt: ast.Break) -> None:
        if not self._loop_stack:
            raise LoweringError(f"'break' outside of a loop at line {stmt.line}")
        break_target, _ = self._loop_stack[-1]
        self._current.terminator = Jump(target=break_target, line=stmt.line)
        self._set_current(self._new_block("dead"))

    def _lower_continue(self, stmt: ast.Continue) -> None:
        if not self._loop_stack:
            raise LoweringError(f"'continue' outside of a loop at line {stmt.line}")
        _, continue_target = self._loop_stack[-1]
        self._current.terminator = Jump(target=continue_target, line=stmt.line)
        self._set_current(self._new_block("dead"))

    def _invalidate_assigned(self, stmt: ast.Stmt) -> None:
        """Drop constant knowledge about variables assigned inside ``stmt``."""
        for child in ast.walk_statements(stmt):
            name: str | None = None
            if isinstance(child, ast.Assign) and isinstance(child.target, ast.Identifier):
                name = child.target.name
            elif isinstance(child, ast.VarDecl):
                name = child.name
            if name is not None:
                self._const_env.pop(name, None)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _lower_expression(self, expr: ast.Expr) -> _ExprValue:
        if isinstance(expr, ast.IntLiteral):
            return _ExprValue(operand=Const(expr.value), const=expr.value)
        if isinstance(expr, ast.Identifier):
            return self._lower_identifier(expr)
        if isinstance(expr, ast.Index):
            return self._lower_index(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise LoweringError(f"unsupported expression {type(expr).__name__}")

    def _lower_identifier(self, expr: ast.Identifier) -> _ExprValue:
        symbol = self._symbol(expr.name, expr)
        if symbol.is_array:
            raise LoweringError(
                f"array {expr.name!r} used as a scalar value at line {expr.line}"
            )
        const = self._const_env.get(expr.name)
        if symbol.in_memory:
            dest = self._new_temp()
            ref = MemoryRef(
                symbol=expr.name,
                is_write=False,
                index_const=0,
                element_size=symbol.element_size,
                line=expr.line,
            )
            self._current.append(Load(dest=dest, ref=ref, line=expr.line))
            if const is not None:
                self._temp_const[dest] = const
            return _ExprValue(operand=dest, const=const, refs=frozenset({ref}))
        temp = self._reg_temp(expr.name)
        return _ExprValue(operand=temp, const=const)

    def _lower_index(self, expr: ast.Index) -> _ExprValue:
        symbol = self._symbol(expr.array, expr)
        if not symbol.is_array:
            raise LoweringError(f"{expr.array!r} is not an array (line {expr.line})")
        index = self._lower_expression(expr.index)
        dest = self._new_temp()
        ref = MemoryRef(
            symbol=expr.array,
            is_write=False,
            index_const=index.const,
            index_secret=self._index_is_secret(expr.index),
            element_size=symbol.element_size,
            line=expr.line,
        )
        if symbol.in_memory:
            self._current.append(
                Load(dest=dest, ref=ref, index_operand=index.operand, line=expr.line)
            )
            refs = index.refs | {ref}
        else:
            refs = index.refs
        # Constant-initialised global arrays with a known index yield a known
        # value, which keeps downstream indices precise (e.g. sbox chains).
        const: int | None = None
        init = self.info.array_initializers.get(expr.array)
        if init is not None and index.const is not None and 0 <= index.const < len(init):
            const = init[index.const]
            self._temp_const[dest] = const
        return _ExprValue(operand=dest, const=const, refs=refs)

    def _lower_binary(self, expr: ast.BinaryOp) -> _ExprValue:
        left = self._lower_expression(expr.left)
        right = self._lower_expression(expr.right)
        refs = left.refs | right.refs
        if (
            left.const is not None
            and right.const is not None
            and expr.op in _FOLDABLE_OPS
        ):
            folded = _fold(expr.op, left.const, right.const)
            if folded is not None and not refs:
                return _ExprValue(operand=Const(folded), const=folded, refs=refs)
            if folded is not None:
                # The loads still had to happen, but the value is known.
                dest = self._new_temp()
                self._current.append(
                    BinOp(dest=dest, op=expr.op, left=left.operand, right=right.operand, line=expr.line)
                )
                self._temp_const[dest] = folded
                return _ExprValue(operand=dest, const=folded, refs=refs)
        dest = self._new_temp()
        self._current.append(
            BinOp(dest=dest, op=expr.op, left=left.operand, right=right.operand, line=expr.line)
        )
        return _ExprValue(operand=dest, const=None, refs=refs)

    def _lower_unary(self, expr: ast.UnaryOp) -> _ExprValue:
        operand = self._lower_expression(expr.operand)
        const: int | None = None
        if operand.const is not None:
            if expr.op == "-":
                const = -operand.const
            elif expr.op == "~":
                const = ~operand.const
            elif expr.op == "!":
                const = int(not operand.const)
        if const is not None and not operand.refs:
            return _ExprValue(operand=Const(const), const=const)
        dest = self._new_temp()
        self._current.append(UnOp(dest=dest, op=expr.op, operand=operand.operand, line=expr.line))
        if const is not None:
            self._temp_const[dest] = const
        return _ExprValue(operand=dest, const=const, refs=operand.refs)

    def _lower_call(self, expr: ast.Call) -> _ExprValue:
        args: list[Operand] = []
        refs: frozenset[MemoryRef] = frozenset()
        arg_consts: list[int | None] = []
        for arg in expr.args:
            value = self._lower_expression(arg)
            args.append(value.operand)
            arg_consts.append(value.const)
            refs = refs | value.refs
        dest = self._new_temp()
        self._current.append(
            CallInstr(dest=dest, callee=expr.name, args=tuple(args), line=expr.line)
        )
        const: int | None = None
        if expr.name in ("my_abs", "abs") and len(arg_consts) == 1 and arg_consts[0] is not None:
            const = abs(arg_consts[0])
            self._temp_const[dest] = const
        if expr.name not in INTRINSIC_FUNCTIONS and not self.info.program.has_function(expr.name):
            # Unknown externals behave like intrinsics: opaque, no memory refs.
            pass
        return _ExprValue(operand=dest, const=const, refs=refs)

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def _prune_unreachable(self) -> None:
        # Give any unterminated (dead) block a return so validation holds,
        # then drop everything unreachable from the entry.
        for block in self.cfg.blocks.values():
            if not block.is_terminated:
                block.terminator = Return(value=None)
        reachable = set(self.cfg.reachable_blocks())
        self.cfg.blocks = {
            name: block for name, block in self.cfg.blocks.items() if name in reachable
        }


def lower_function(function: ast.FunctionDef, info: ProgramInfo) -> CFG:
    """Lower a single function to its CFG."""
    return FunctionLowerer(function, info).lower()


def lower_program(info: ProgramInfo) -> dict[str, CFG]:
    """Lower every function of a checked program.

    Returns a mapping from function name to CFG.
    """
    return {
        function.name: lower_function(function, info)
        for function in info.program.functions
    }
