"""Natural-loop detection and simple trip-count inference on the IR."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.dominators import compute_dominators
from repro.ir.instructions import BinOp, CondBranch, Const, Copy, Load, Temp


@dataclass
class Loop:
    """A natural loop: a header plus the set of blocks that can reach the
    back edge without leaving the header's dominance region."""

    header: str
    blocks: set[str] = field(default_factory=set)
    back_edges: list[tuple[str, str]] = field(default_factory=list)

    def contains(self, block: str) -> bool:
        return block in self.blocks

    def exits(self, cfg: CFG) -> list[str]:
        """Blocks outside the loop that are targets of edges from inside it."""
        result: list[str] = []
        for block in self.blocks:
            for successor in cfg.successors(block):
                if successor not in self.blocks and successor not in result:
                    result.append(successor)
        return result


def find_natural_loops(cfg: CFG) -> list[Loop]:
    """Find all natural loops of ``cfg`` (one per header, back edges merged)."""
    dom = compute_dominators(cfg)
    loops: dict[str, Loop] = {}
    for source in cfg.reachable_blocks():
        for target in cfg.successors(source):
            if target in dom.get(source, set()):
                # source -> target is a back edge; target is the loop header.
                loop = loops.setdefault(target, Loop(header=target, blocks={target}))
                loop.back_edges.append((source, target))
                _collect_loop_body(cfg, loop, source)
    return list(loops.values())


def _collect_loop_body(cfg: CFG, loop: Loop, latch: str) -> None:
    """Add to ``loop`` every block that reaches ``latch`` without passing
    through the header (the standard natural-loop body computation)."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block in loop.blocks:
            continue
        loop.blocks.add(block)
        for pred in cfg.predecessors(block):
            if pred not in loop.blocks:
                stack.append(pred)


def loop_of_block(loops: list[Loop], block: str) -> Loop | None:
    """Return the innermost loop containing ``block`` (smallest body)."""
    candidates = [loop for loop in loops if loop.contains(block)]
    if not candidates:
        return None
    return min(candidates, key=lambda loop: len(loop.blocks))


def infer_trip_count(cfg: CFG, loop: Loop) -> int | None:
    """Best-effort trip-count inference for counter-controlled loops.

    Recognises the pattern produced by lowering a ``for`` loop over a
    register counter: the header ends in ``br (i OP c) ? body : exit``
    where ``i`` is a register temp (or a load of a scalar) initialised to a
    constant before the loop and incremented by a constant inside it.
    Returns ``None`` when the pattern does not match — the analysis then
    relies on widening instead (Section 6.3).
    """
    header_block = cfg.block(loop.header)
    terminator = header_block.terminator
    if not isinstance(terminator, CondBranch) or not isinstance(terminator.cond, Temp):
        return None
    compare = _defining_binop(cfg, loop.header, terminator.cond)
    if compare is None or compare.op not in ("<", "<=", ">", ">="):
        return None
    if not isinstance(compare.right, Const):
        return None
    bound = compare.right.value
    counter = compare.left
    if not isinstance(counter, Temp):
        return None
    counter_symbol = _counter_symbol(header_block, counter)
    start = _initial_value(cfg, loop, counter, counter_symbol)
    step = _step_value(cfg, loop, counter, counter_symbol)
    if start is None or step is None or step == 0:
        return None
    count = 0
    value = start
    limit = 1_000_000
    while count < limit:
        if compare.op == "<" and not value < bound:
            break
        if compare.op == "<=" and not value <= bound:
            break
        if compare.op == ">" and not value > bound:
            break
        if compare.op == ">=" and not value >= bound:
            break
        value += step
        count += 1
    if count >= limit:
        return None
    return count


def _defining_binop(cfg: CFG, block_name: str, temp: Temp) -> BinOp | None:
    for instruction in reversed(cfg.block(block_name).instructions):
        if isinstance(instruction, BinOp) and instruction.dest == temp:
            return instruction
    return None


def _counter_symbol(header_block, counter: Temp) -> str | None:
    """If the counter temp is a load of a scalar, return the scalar's name."""
    for instruction in header_block.instructions:
        if isinstance(instruction, Load) and instruction.dest == counter:
            return instruction.ref.symbol
    return None


def _initial_value(cfg: CFG, loop: Loop, counter: Temp, symbol: str | None) -> int | None:
    """Find a constant assigned to the counter before entering the loop."""
    for block_name in cfg.reachable_blocks():
        if block_name in loop.blocks:
            continue
        for instruction in cfg.block(block_name).instructions:
            value = _constant_written(instruction, counter, symbol)
            if value is not None:
                return value
    return None


def _step_value(cfg: CFG, loop: Loop, counter: Temp, symbol: str | None) -> int | None:
    """Find a constant increment of the counter inside the loop."""
    for block_name in loop.blocks:
        block = cfg.block(block_name)
        for index, instruction in enumerate(block.instructions):
            if not isinstance(instruction, BinOp) or instruction.op not in ("+", "-"):
                continue
            sources = _reads_counter(block, index, instruction, counter, symbol)
            if not sources:
                continue
            if isinstance(instruction.right, Const):
                step = instruction.right.value
                return step if instruction.op == "+" else -step
    return None


def _reads_counter(block, index: int, instruction: BinOp, counter: Temp, symbol: str | None) -> bool:
    if instruction.left == counter:
        return True
    if symbol is None:
        return False
    # The left operand may be a fresh load of the counter's backing scalar.
    for earlier in block.instructions[:index]:
        if (
            isinstance(earlier, Load)
            and earlier.dest == instruction.left
            and earlier.ref.symbol == symbol
        ):
            return True
    return False


def _constant_written(instruction, counter: Temp, symbol: str | None) -> int | None:
    if isinstance(instruction, Copy) and instruction.dest == counter:
        if isinstance(instruction.src, Const):
            return instruction.src.value
    if symbol is not None and hasattr(instruction, "ref"):
        ref = getattr(instruction, "ref")
        if getattr(ref, "symbol", None) == symbol and getattr(ref, "is_write", False):
            value = getattr(instruction, "value", None)
            if isinstance(value, Const):
                return value.value
    return None
