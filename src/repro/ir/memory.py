"""Memory layout: mapping program symbols to cache-line-sized blocks.

The cache analysis does not track bytes; it tracks *memory blocks*, i.e.
cache-line-sized chunks of program objects.  A scalar occupies one block;
an array of ``s`` bytes occupies ``ceil(s / line_size)`` blocks.  Objects
never share a block (each object starts at a line boundary), matching the
paper's assumption that the example variables "are mapped to different
cache lines".

Array accesses whose index is statically unknown are resolved using the
paper's convention from Table 1: successive unknown accesses to the same
array conservatively pick successive fresh lines (``decis_lev[1*]``,
``decis_lev[2*]``, ...).  That bookkeeping lives in the analysis; this
module only says *which* blocks an access may touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.errors import ConfigError
from repro.ir.instructions import MemoryRef
from repro.lang.typecheck import ProgramInfo, Symbol


@dataclass(frozen=True, order=True)
class MemoryBlock:
    """One cache-line-sized block of a program object.

    ``index`` is the block's position within its object (0 for scalars).
    Negative indices denote the *symbolic placeholder lines* used for
    accesses whose element index is statically unknown — the paper's
    ``decis_lev[1*]``, ``decis_lev[2*]`` convention from Table 1 (index
    ``-k`` is the k-th placeholder).
    """

    symbol: str
    index: int = 0

    # Blocks are the key type of every abstract cache state's must/may
    # maps; the analysis hashes and compares them millions of times per
    # fixpoint.  The handwritten dunders below are semantically identical
    # to the dataclass-generated ones but skip the per-call field-tuple
    # allocation; the hash is precomputed once at construction (blocks
    # are built far more rarely than they are looked up).  Str hashes are
    # per-process (PYTHONHASHSEED), so ``__reduce__`` rebuilds from the
    # fields and never ships the cached value across a process boundary.
    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash(self.symbol) ^ (self.index * -0x61C88647)
        )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is MemoryBlock:
            return self.index == other.index and self.symbol == other.symbol
        return NotImplemented

    def __reduce__(self):
        return (MemoryBlock, (self.symbol, self.index))

    @property
    def is_placeholder(self) -> bool:
        return self.index < 0

    def __str__(self) -> str:
        if self.index < 0:
            return f"{self.symbol}[{-self.index}*]"
        if self.index == 0:
            return self.symbol
        return f"{self.symbol}#{self.index}"


def placeholder_blocks(symbol: str, num_blocks: int) -> list[MemoryBlock]:
    """The symbolic placeholder lines of an object (one per real block)."""
    return [MemoryBlock(symbol, -(k + 1)) for k in range(num_blocks)]


class AccessKind(Enum):
    """How precisely an access's target block is known."""

    CONCRETE = auto()   # exactly one known block
    UNKNOWN = auto()    # some block of the object, index not statically known
    SECRET = auto()     # some block of the object, index derived from a secret


@dataclass(frozen=True)
class BlockAccess:
    """A resolved memory access.

    ``blocks`` always lists every block the access *may* touch; for
    :data:`AccessKind.CONCRETE` accesses it has exactly one element.
    """

    kind: AccessKind
    symbol: str
    blocks: tuple[MemoryBlock, ...]
    is_write: bool
    ref: MemoryRef

    @property
    def concrete_block(self) -> MemoryBlock:
        if self.kind is not AccessKind.CONCRETE:
            raise ValueError(f"access to {self.symbol!r} is not concrete")
        return self.blocks[0]


@dataclass
class ObjectLayout:
    """Placement of one program object (scalar or array)."""

    symbol: Symbol
    num_blocks: int

    @property
    def name(self) -> str:
        return self.symbol.name

    def blocks(self) -> list[MemoryBlock]:
        return [MemoryBlock(self.symbol.name, index) for index in range(self.num_blocks)]


@dataclass
class MemoryLayout:
    """Mapping from program symbols to their memory blocks."""

    line_size: int
    objects: dict[str, ObjectLayout] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_program(cls, info: ProgramInfo, line_size: int = 64) -> "MemoryLayout":
        """Build the layout for every in-memory symbol of ``info``."""
        if line_size <= 0:
            raise ConfigError(f"line size must be positive, got {line_size}")
        layout = cls(line_size=line_size)
        for symbol in info.globals_table.local_symbols():
            layout._add_symbol(symbol)
        for function_info in info.functions.values():
            for symbol in function_info.table.local_symbols():
                layout._add_symbol(symbol)
        return layout

    def _add_symbol(self, symbol: Symbol) -> None:
        self._resolve_cache = None
        if not symbol.in_memory:
            return
        if symbol.name in self.objects:
            # Same-named locals in different functions share a layout entry;
            # the largest footprint wins so the analysis stays conservative.
            existing = self.objects[symbol.name]
            num_blocks = max(existing.num_blocks, self._blocks_for(symbol))
            self.objects[symbol.name] = ObjectLayout(symbol=symbol, num_blocks=num_blocks)
            return
        self.objects[symbol.name] = ObjectLayout(
            symbol=symbol, num_blocks=self._blocks_for(symbol)
        )

    def _blocks_for(self, symbol: Symbol) -> int:
        size = max(symbol.size_bytes, 1)
        return (size + self.line_size - 1) // self.line_size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_symbol(self, name: str) -> bool:
        return name in self.objects

    def object(self, name: str) -> ObjectLayout:
        try:
            return self.objects[name]
        except KeyError as exc:
            raise ConfigError(f"no memory layout for symbol {name!r}") from exc

    def blocks_of(self, name: str) -> list[MemoryBlock]:
        return self.object(name).blocks()

    def all_blocks(self) -> list[MemoryBlock]:
        blocks: list[MemoryBlock] = []
        for obj in self.objects.values():
            blocks.extend(obj.blocks())
        return blocks

    @property
    def total_blocks(self) -> int:
        return sum(obj.num_blocks for obj in self.objects.values())

    # ------------------------------------------------------------------
    # Access resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: MemoryRef) -> BlockAccess:
        """Resolve a :class:`MemoryRef` to the blocks it may touch.

        Memoised per ref: resolution is pure given the layout, and every
        :class:`~repro.analysis.transfer.AccessTable` built against this
        layout re-resolves the same refs (the incremental mitigation loop
        builds one table per scored candidate).  The shared
        :class:`BlockAccess` values are immutable.
        """
        cache = getattr(self, "_resolve_cache", None)
        if cache is None:
            cache = {}
            self._resolve_cache = cache
        cached = cache.get(ref)
        if cached is not None:
            return cached
        access = self._resolve_uncached(ref)
        cache[ref] = access
        return access

    def _resolve_uncached(self, ref: MemoryRef) -> BlockAccess:
        obj = self.object(ref.symbol)
        all_blocks = tuple(obj.blocks())
        if ref.index_secret:
            return BlockAccess(
                kind=AccessKind.SECRET,
                symbol=ref.symbol,
                blocks=all_blocks,
                is_write=ref.is_write,
                ref=ref,
            )
        if ref.index_const is None:
            return BlockAccess(
                kind=AccessKind.UNKNOWN,
                symbol=ref.symbol,
                blocks=all_blocks,
                is_write=ref.is_write,
                ref=ref,
            )
        byte_offset = ref.index_const * max(ref.element_size, 1)
        block_index = byte_offset // self.line_size
        block_index = min(max(block_index, 0), obj.num_blocks - 1)
        return BlockAccess(
            kind=AccessKind.CONCRETE,
            symbol=ref.symbol,
            blocks=(MemoryBlock(ref.symbol, block_index),),
            is_write=ref.is_write,
            ref=ref,
        )

    def describe(self) -> str:
        """Human-readable summary of the layout."""
        lines = [f"memory layout (line size {self.line_size} bytes)"]
        for name, obj in sorted(self.objects.items()):
            lines.append(f"  {name}: {obj.num_blocks} block(s)")
        return "\n".join(lines)
