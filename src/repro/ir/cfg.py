"""Control-flow graph built from basic blocks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CFGError
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import CondBranch, Jump, MemoryRef, Return, Terminator


@dataclass(frozen=True)
class Edge:
    """A CFG edge, optionally labelled with the branch outcome that takes it."""

    source: str
    target: str
    taken: bool | None = None  # True/False for conditional edges, None otherwise

    def __str__(self) -> str:
        label = "" if self.taken is None else (" [T]" if self.taken else " [F]")
        return f"{self.source} -> {self.target}{label}"


@dataclass
class CFG:
    """A function's control-flow graph.

    Blocks are kept in an ordered dict; the entry block is always present.
    Blocks terminated by :class:`Return` are the exit blocks.
    """

    name: str
    entry: str = "entry"
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    params: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self.blocks:
            raise CFGError(f"duplicate block {block.name!r} in {self.name!r}")
        self.blocks[block.name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError as exc:
            raise CFGError(f"unknown block {name!r} in {self.name!r}") from exc

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def successors(self, name: str) -> list[str]:
        terminator = self.block(name).terminator
        if terminator is None:
            return []
        return [target for target in terminator.targets()]

    def predecessors(self, name: str) -> list[str]:
        preds = []
        for block_name in self.blocks:
            if name in self.successors(block_name):
                preds.append(block_name)
        return preds

    def edges(self) -> list[Edge]:
        result: list[Edge] = []
        for name, block in self.blocks.items():
            terminator = block.terminator
            if isinstance(terminator, CondBranch):
                result.append(Edge(name, terminator.true_target, taken=True))
                result.append(Edge(name, terminator.false_target, taken=False))
            elif isinstance(terminator, Jump):
                result.append(Edge(name, terminator.target))
        return result

    def exit_blocks(self) -> list[str]:
        return [
            name
            for name, block in self.blocks.items()
            if isinstance(block.terminator, Return)
        ]

    def conditional_blocks(self) -> list[str]:
        """Blocks terminated by a conditional branch (speculation sources)."""
        return [
            name
            for name, block in self.blocks.items()
            if isinstance(block.terminator, CondBranch)
        ]

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def reachable_blocks(self) -> list[str]:
        """Blocks reachable from the entry, in depth-first discovery order."""
        seen: list[str] = []
        seen_set: set[str] = set()
        stack = [self.entry]
        while stack:
            name = stack.pop()
            if name in seen_set:
                continue
            seen_set.add(name)
            seen.append(name)
            for successor in reversed(self.successors(name)):
                if successor not in seen_set:
                    stack.append(successor)
        return seen

    def reverse_postorder(self) -> list[str]:
        """Blocks in reverse postorder (a good worklist iteration order)."""
        visited: set[str] = set()
        postorder: list[str] = []

        def visit(name: str) -> None:
            stack: list[tuple[str, int]] = [(name, 0)]
            while stack:
                current, index = stack.pop()
                if index == 0:
                    if current in visited:
                        continue
                    visited.add(current)
                successors = self.successors(current)
                if index < len(successors):
                    stack.append((current, index + 1))
                    successor = successors[index]
                    if successor not in visited:
                        stack.append((successor, 0))
                else:
                    postorder.append(current)

        visit(self.entry)
        return list(reversed(postorder))

    # ------------------------------------------------------------------
    # Whole-function queries
    # ------------------------------------------------------------------
    def all_memory_refs(self) -> list[MemoryRef]:
        refs: list[MemoryRef] = []
        for name in self.reachable_blocks():
            refs.extend(self.block(name).memory_refs())
        return refs

    def referenced_symbols(self) -> set[str]:
        return {ref.symbol for ref in self.all_memory_refs()}

    @property
    def instruction_count(self) -> int:
        return sum(block.instruction_count for block in self.blocks.values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants, raising :class:`CFGError` if violated."""
        if self.entry not in self.blocks:
            raise CFGError(f"entry block {self.entry!r} missing from {self.name!r}")
        for name, block in self.blocks.items():
            if block.name != name:
                raise CFGError(f"block key {name!r} does not match block name {block.name!r}")
            if block.terminator is None:
                raise CFGError(f"block {name!r} has no terminator")
            for target in block.terminator.targets():
                if target not in self.blocks:
                    raise CFGError(
                        f"block {name!r} branches to unknown block {target!r}"
                    )
        if not self.exit_blocks():
            raise CFGError(f"function {self.name!r} has no return block")

    def copy_of_terminator(self, name: str) -> Terminator:
        """Return the terminator of ``name`` (useful for rewriting passes)."""
        terminator = self.block(name).terminator
        if terminator is None:
            raise CFGError(f"block {name!r} has no terminator")
        return terminator

    def __str__(self) -> str:
        parts = [f"function {self.name}({', '.join(self.params)})"]
        for name in self.reachable_blocks():
            parts.append(str(self.block(name)))
        return "\n".join(parts)
