"""Control-flow graph built from basic blocks."""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field

from repro.errors import CFGError
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import CondBranch, Jump, MemoryRef, Return, Terminator


# ----------------------------------------------------------------------
# Content fingerprints
# ----------------------------------------------------------------------
def _canonical(value: object) -> object:
    """A structural, line-insensitive rendering of an IR value.

    Source line numbers shift wholesale when an edit inserts or removes a
    statement (the exact situation incremental re-analysis exists for), so
    ``line`` fields are excluded everywhere.  ``__str__`` forms are *not*
    used: they drop analysis-relevant detail (``CondBranch.__str__`` omits
    ``cond_refs``, ``MemoryRef.__str__`` omits ``element_size``).
    """
    if isinstance(value, MemoryRef):
        return (
            "ref",
            value.symbol,
            value.is_write,
            value.index_const,
            value.index_secret,
            value.element_size,
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts: list[object] = [type(value).__name__]
        for fld in dataclasses.fields(value):
            if fld.name == "line":
                continue
            parts.append(_canonical(getattr(value, fld.name)))
        return tuple(parts)
    if isinstance(value, (tuple, list)):
        return tuple(_canonical(item) for item in value)
    if value is None or isinstance(value, (str, int, bool)):
        return value
    return repr(value)


def block_fingerprint(block: BasicBlock) -> str:
    """A stable content hash of a block's instructions and terminator.

    Two blocks with the same fingerprint have identical analysis semantics
    (same accesses, same transfer, same branch structure) regardless of the
    source lines they were lowered from.
    """
    payload = (
        tuple(_canonical(instruction) for instruction in block.instructions),
        _canonical(block.terminator),
    )
    digest = hashlib.sha256(repr(payload).encode("utf-8"))
    return digest.hexdigest()


def block_line_signature(block: BasicBlock) -> str:
    """A hash of the *source lines* a block's instructions carry.

    :func:`block_fingerprint` is deliberately line-insensitive, which is
    what incremental invalidation wants — but classifications embed the
    lines of the :class:`~repro.ir.instructions.MemoryRef` they report, so
    a retained classification is only reusable verbatim when the block's
    lines match too (an edit that shifts lines without changing content
    keeps the fingerprint but not this signature).
    """
    payload = (
        tuple(instruction.line for instruction in block.instructions),
        block.terminator.line if block.terminator is not None else None,
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CFGDiff:
    """Block-level difference between two CFGs, matched by block name.

    ``changed`` blocks exist in both CFGs with different content;
    ``added``/``removed`` exist only in the new/old CFG; ``unchanged``
    blocks are bit-identical.  ``touched`` is the union of everything that
    differs — the invalidation frontier for incremental re-analysis.
    """

    changed: frozenset[str]
    added: frozenset[str]
    removed: frozenset[str]
    unchanged: frozenset[str]

    @property
    def touched(self) -> frozenset[str]:
        return self.changed | self.added | self.removed

    @property
    def is_identical(self) -> bool:
        return not self.touched


def diff_cfgs(old: "CFG | dict[str, str]", new: "CFG") -> CFGDiff:
    """Map an edited CFG onto its predecessor.

    ``old`` may be a live :class:`CFG` or a retained ``{name: fingerprint}``
    summary (the form snapshots store, so the predecessor program need not
    stay resident).  Correspondence is by block name: the lowering pipeline
    derives names deterministically from source structure, so an edit that
    perturbs one statement leaves every other block's name and content
    intact.
    """
    old_fps = old if isinstance(old, dict) else old.block_fingerprints()
    new_fps = new.block_fingerprints()
    changed = frozenset(
        name
        for name, fp in new_fps.items()
        if name in old_fps and old_fps[name] != fp
    )
    added = frozenset(name for name in new_fps if name not in old_fps)
    removed = frozenset(name for name in old_fps if name not in new_fps)
    unchanged = frozenset(
        name
        for name, fp in new_fps.items()
        if old_fps.get(name) == fp
    )
    return CFGDiff(changed=changed, added=added, removed=removed, unchanged=unchanged)


@dataclass(frozen=True)
class Edge:
    """A CFG edge, optionally labelled with the branch outcome that takes it."""

    source: str
    target: str
    taken: bool | None = None  # True/False for conditional edges, None otherwise

    def __str__(self) -> str:
        label = "" if self.taken is None else (" [T]" if self.taken else " [F]")
        return f"{self.source} -> {self.target}{label}"


@dataclass
class CFG:
    """A function's control-flow graph.

    Blocks are kept in an ordered dict; the entry block is always present.
    Blocks terminated by :class:`Return` are the exit blocks.
    """

    name: str
    entry: str = "entry"
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    params: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self.blocks:
            raise CFGError(f"duplicate block {block.name!r} in {self.name!r}")
        self.blocks[block.name] = block
        self._fingerprint_cache = None
        self._line_signature_cache = None
        return block

    def block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError as exc:
            raise CFGError(f"unknown block {name!r} in {self.name!r}") from exc

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def successors(self, name: str) -> list[str]:
        terminator = self.block(name).terminator
        if terminator is None:
            return []
        return [target for target in terminator.targets()]

    def predecessors(self, name: str) -> list[str]:
        preds = []
        for block_name in self.blocks:
            if name in self.successors(block_name):
                preds.append(block_name)
        return preds

    def edges(self) -> list[Edge]:
        result: list[Edge] = []
        for name, block in self.blocks.items():
            terminator = block.terminator
            if isinstance(terminator, CondBranch):
                result.append(Edge(name, terminator.true_target, taken=True))
                result.append(Edge(name, terminator.false_target, taken=False))
            elif isinstance(terminator, Jump):
                result.append(Edge(name, terminator.target))
        return result

    def exit_blocks(self) -> list[str]:
        return [
            name
            for name, block in self.blocks.items()
            if isinstance(block.terminator, Return)
        ]

    def conditional_blocks(self) -> list[str]:
        """Blocks terminated by a conditional branch (speculation sources)."""
        return [
            name
            for name, block in self.blocks.items()
            if isinstance(block.terminator, CondBranch)
        ]

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def reachable_blocks(self) -> list[str]:
        """Blocks reachable from the entry, in depth-first discovery order."""
        seen: list[str] = []
        seen_set: set[str] = set()
        stack = [self.entry]
        while stack:
            name = stack.pop()
            if name in seen_set:
                continue
            seen_set.add(name)
            seen.append(name)
            for successor in reversed(self.successors(name)):
                if successor not in seen_set:
                    stack.append(successor)
        return seen

    def reverse_postorder(self) -> list[str]:
        """Blocks in reverse postorder (a good worklist iteration order)."""
        visited: set[str] = set()
        postorder: list[str] = []

        def visit(name: str) -> None:
            stack: list[tuple[str, int]] = [(name, 0)]
            while stack:
                current, index = stack.pop()
                if index == 0:
                    if current in visited:
                        continue
                    visited.add(current)
                successors = self.successors(current)
                if index < len(successors):
                    stack.append((current, index + 1))
                    successor = successors[index]
                    if successor not in visited:
                        stack.append((successor, 0))
                else:
                    postorder.append(current)

        visit(self.entry)
        return list(reversed(postorder))

    # ------------------------------------------------------------------
    # Whole-function queries
    # ------------------------------------------------------------------
    def all_memory_refs(self) -> list[MemoryRef]:
        refs: list[MemoryRef] = []
        for name in self.reachable_blocks():
            refs.extend(self.block(name).memory_refs())
        return refs

    def referenced_symbols(self) -> set[str]:
        return {ref.symbol for ref in self.all_memory_refs()}

    @property
    def instruction_count(self) -> int:
        return sum(block.instruction_count for block in self.blocks.values())

    # ------------------------------------------------------------------
    # Content fingerprints
    # ------------------------------------------------------------------
    def attach_content_caches(
        self, fingerprints: dict[str, str], line_signatures: dict[str, str]
    ) -> None:
        """Install precomputed per-block fingerprint/line-signature maps.

        Trusted producers that *know* the maps match the current blocks —
        the snapshot builder after a full computation, and the IR-level
        fence patcher, which derives the edited graph's maps from its
        predecessor's by re-fingerprinting only the blocks it touched —
        attach them so the hot incremental paths (``diff_cfgs``, the vcfg
        memo key, classification reuse) stop paying a full per-instruction
        canonicalisation pass per candidate.  The caches are semantically
        transparent; mutating a block *in place* after attaching is
        unsupported (``add_block`` clears them, in-place instruction edits
        cannot be seen — build a new CFG instead, as the lowering pipeline
        and the patcher already do).
        """
        self._fingerprint_cache = dict(fingerprints)
        self._line_signature_cache = dict(line_signatures)

    def block_fingerprints(self) -> dict[str, str]:
        """Per-block content fingerprints, in block-dict order."""
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None:
            return dict(cached)
        return {name: block_fingerprint(block) for name, block in self.blocks.items()}

    def block_line_signatures(self) -> dict[str, str]:
        """Per-block source-line signatures (see :func:`block_line_signature`)."""
        cached = getattr(self, "_line_signature_cache", None)
        if cached is not None:
            return dict(cached)
        return {
            name: block_line_signature(block) for name, block in self.blocks.items()
        }

    def content_fingerprint(self) -> str:
        """A stable content hash of the whole function.

        Includes block *order* (scenario colors are assigned in
        ``conditional_blocks()`` order, which follows the block dict) so two
        CFGs with equal fingerprints produce identical vcfgs and identical
        analysis results.  Computed fresh on every call unless a trusted
        producer attached content caches (see
        :meth:`attach_content_caches`): content-keyed memos must never
        alias a mutated graph to its old key.
        """
        payload = (
            self.name,
            self.entry,
            tuple(self.params),
            tuple(self.block_fingerprints().items()),
        )
        digest = hashlib.sha256(repr(payload).encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants, raising :class:`CFGError` if violated."""
        if self.entry not in self.blocks:
            raise CFGError(f"entry block {self.entry!r} missing from {self.name!r}")
        for name, block in self.blocks.items():
            if block.name != name:
                raise CFGError(f"block key {name!r} does not match block name {block.name!r}")
            if block.terminator is None:
                raise CFGError(f"block {name!r} has no terminator")
            for target in block.terminator.targets():
                if target not in self.blocks:
                    raise CFGError(
                        f"block {name!r} branches to unknown block {target!r}"
                    )
        if not self.exit_blocks():
            raise CFGError(f"function {self.name!r} has no return block")

    def copy_of_terminator(self, name: str) -> Terminator:
        """Return the terminator of ``name`` (useful for rewriting passes)."""
        terminator = self.block(name).terminator
        if terminator is None:
            raise CFGError(f"block {name!r} has no terminator")
        return terminator

    def __str__(self) -> str:
        parts = [f"function {self.name}({', '.join(self.params)})"]
        for name in self.reachable_blocks():
            parts.append(str(self.block(name)))
        return "\n".join(parts)
