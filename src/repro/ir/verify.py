"""IR lint/verifier: structural well-formedness checks for CFGs.

:meth:`~repro.ir.cfg.CFG.validate` raises on the first structural
violation; this module instead collects *every* defect as a structured
:class:`LintFinding`, adds checks the raising validator does not cover
(terminator objects buried inside a block, fences in the terminator
slot, memory references to symbols the layout never declared,
dominator/post-dominator sanity), and renders them for humans or JSON.

Three entry points:

* :func:`verify_cfg` — lint one CFG (optionally against a memory layout);
* :func:`verify_program` — lint every function of a compiled program,
  layout included;
* :func:`assert_valid_ir` — raise :class:`~repro.errors.VerificationError`
  when a program has findings.  The front end calls this after every
  compile when ``REPRO_DEBUG_VERIFY`` is set, so a frontend, unroll,
  inline, or fence-patching bug fails fast instead of corrupting a
  fixpoint downstream.

Checks are phased: graph-level analyses (reachability, dominators) are
only attempted once the block-structural phase is clean, because a
dangling successor makes every traversal throw.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ReproError, VerificationError
from repro.ir.cfg import CFG
from repro.ir.dominators import immediate_dominators, postdominator_tree
from repro.ir.instructions import CondBranch, Fence, MemoryRef, Terminator
from repro.ir.memory import MemoryLayout

#: Environment knob: when truthy, :func:`repro.frontend.compile_source`
#: verifies every program it produces and raises on findings.
DEBUG_VERIFY_ENV = "REPRO_DEBUG_VERIFY"

#: Finding codes, stable identifiers for tooling and regression tests.
MISSING_ENTRY = "missing-entry"
BLOCK_KEY_MISMATCH = "block-key-mismatch"
MISSING_TERMINATOR = "missing-terminator"
DANGLING_SUCCESSOR = "dangling-successor"
MID_BLOCK_TERMINATOR = "mid-block-terminator"
FENCE_AS_TERMINATOR = "fence-as-terminator"
BAD_TERMINATOR = "bad-terminator"
NO_RETURN = "no-return"
UNDECLARED_SYMBOL = "undeclared-symbol"
MALFORMED_REF = "malformed-ref"
DOMINATOR_SANITY = "dominator-sanity"
POSTDOMINATOR_SANITY = "postdominator-sanity"
GRAPH_ERROR = "graph-error"


@dataclass(frozen=True)
class LintFinding:
    """One verifier defect, anchored to a function and (usually) a block."""

    code: str
    function: str
    block: str | None
    message: str
    line: int = 0

    def render(self) -> str:
        where = self.function if self.block is None else f"{self.function}:{self.block}"
        suffix = f" (line {self.line})" if self.line else ""
        return f"[{self.code}] {where}: {self.message}{suffix}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "function": self.function,
            "block": self.block,
            "message": self.message,
            "line": self.line,
        }


def _check_ref(
    cfg_name: str,
    block: str,
    ref: MemoryRef,
    layout: MemoryLayout,
    findings: list[LintFinding],
    context: str,
) -> None:
    kind = "store to" if ref.is_write else "load from"
    if not layout.has_symbol(ref.symbol):
        findings.append(
            LintFinding(
                code=UNDECLARED_SYMBOL,
                function=cfg_name,
                block=block,
                message=f"{context}{kind} undeclared memory block {ref.symbol!r}",
                line=ref.line,
            )
        )
    if ref.element_size < 0 or (ref.index_const is not None and ref.index_const < 0):
        findings.append(
            LintFinding(
                code=MALFORMED_REF,
                function=cfg_name,
                block=block,
                message=f"{context}malformed reference {ref}",
                line=ref.line,
            )
        )


def _structural_findings(cfg: CFG, layout: MemoryLayout | None) -> list[LintFinding]:
    findings: list[LintFinding] = []
    if cfg.entry not in cfg.blocks:
        findings.append(
            LintFinding(
                code=MISSING_ENTRY,
                function=cfg.name,
                block=None,
                message=f"entry block {cfg.entry!r} is not in the graph",
            )
        )
    for name, block in cfg.blocks.items():
        if block.name != name:
            findings.append(
                LintFinding(
                    code=BLOCK_KEY_MISMATCH,
                    function=cfg.name,
                    block=name,
                    message=f"block is keyed {name!r} but names itself {block.name!r}",
                )
            )
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, Terminator):
                findings.append(
                    LintFinding(
                        code=MID_BLOCK_TERMINATOR,
                        function=cfg.name,
                        block=name,
                        message=(
                            f"terminator {instruction!s} appears mid-block "
                            f"at instruction {index}"
                        ),
                        line=instruction.line,
                    )
                )
            elif layout is not None:
                for ref in instruction.memory_refs():
                    _check_ref(cfg.name, name, ref, layout, findings, "")
        terminator = block.terminator
        if terminator is None:
            findings.append(
                LintFinding(
                    code=MISSING_TERMINATOR,
                    function=cfg.name,
                    block=name,
                    message="block has no terminator",
                )
            )
            continue
        if not isinstance(terminator, Terminator):
            # A fence is an ordinary instruction — legal only *inside* a
            # block; finding one (or any non-terminator) in the terminator
            # slot means a patching pass dropped the real control flow.
            code = FENCE_AS_TERMINATOR if isinstance(terminator, Fence) else BAD_TERMINATOR
            what = (
                "fence placed outside the instruction list, in the terminator slot"
                if isinstance(terminator, Fence)
                else f"terminator slot holds a non-terminator {terminator!s}"
            )
            findings.append(
                LintFinding(
                    code=code,
                    function=cfg.name,
                    block=name,
                    message=what,
                    line=getattr(terminator, "line", 0),
                )
            )
            continue
        for target in terminator.targets():
            if target not in cfg.blocks:
                findings.append(
                    LintFinding(
                        code=DANGLING_SUCCESSOR,
                        function=cfg.name,
                        block=name,
                        message=f"branches to unknown block {target!r}",
                        line=terminator.line,
                    )
                )
        if layout is not None and isinstance(terminator, CondBranch):
            for ref in terminator.cond_refs:
                _check_ref(cfg.name, name, ref, layout, findings, "condition ")
    if not findings and not cfg.exit_blocks():
        findings.append(
            LintFinding(
                code=NO_RETURN,
                function=cfg.name,
                block=None,
                message="function has no return block",
            )
        )
    return findings


def _chain_reaches(start: str, tree: dict, goal: str | None, limit: int) -> bool:
    """Follow single-parent ``tree`` links from ``start``; True when the
    walk ends at ``goal`` (or at ``None`` when goal is None) within
    ``limit`` steps — i.e. the chain is acyclic and properly rooted."""
    node: str | None = start
    for _ in range(limit + 1):
        if node == goal:
            return True
        if node is None:
            return goal is None
        node = tree.get(node)
    return False


def _graph_findings(cfg: CFG) -> list[LintFinding]:
    """Dominator/post-dominator sanity; only meaningful on a graph the
    structural phase accepted."""
    findings: list[LintFinding] = []
    try:
        reachable = cfg.reachable_blocks()
        idom = immediate_dominators(cfg)
        limit = len(reachable) + 1
        for block in reachable:
            if block == cfg.entry:
                if idom.get(block) is not None:
                    findings.append(
                        LintFinding(
                            code=DOMINATOR_SANITY,
                            function=cfg.name,
                            block=block,
                            message=(
                                f"entry block has an immediate dominator "
                                f"{idom[block]!r}"
                            ),
                        )
                    )
            elif not _chain_reaches(block, idom, None, limit):
                findings.append(
                    LintFinding(
                        code=DOMINATOR_SANITY,
                        function=cfg.name,
                        block=block,
                        message="immediate-dominator chain does not terminate",
                    )
                )
        pdom = postdominator_tree(cfg)
        for block in reachable:
            if not _chain_reaches(block, pdom, None, limit):
                findings.append(
                    LintFinding(
                        code=POSTDOMINATOR_SANITY,
                        function=cfg.name,
                        block=block,
                        message="immediate-postdominator chain does not terminate",
                    )
                )
    except ReproError as error:
        findings.append(
            LintFinding(
                code=GRAPH_ERROR,
                function=cfg.name,
                block=None,
                message=f"graph analysis failed: {error}",
            )
        )
    return findings


def verify_cfg(cfg: CFG, layout: MemoryLayout | None = None) -> list[LintFinding]:
    """Lint one CFG; returns every finding (empty list when clean)."""
    findings = _structural_findings(cfg, layout)
    if findings:
        # Traversals are unsafe on a structurally broken graph (a dangling
        # successor throws inside reachable_blocks); report what we have.
        return findings
    return _graph_findings(cfg)


def verify_program(program) -> list[LintFinding]:
    """Lint a :class:`~repro.frontend.CompiledProgram`: the analysed entry
    CFG plus every non-entry function, all against the program's memory
    layout."""
    findings = verify_cfg(program.cfg, program.layout)
    for name, cfg in program.cfgs.items():
        if name == program.cfg.name:
            continue  # the analysed graph already covers the entry function
        findings.extend(verify_cfg(cfg, program.layout))
    from repro.obs import metrics

    registry = metrics()
    registry.counter("lint.runs").inc()
    if findings:
        registry.counter("lint.findings").inc(len(findings))
    return findings


def assert_valid_ir(program) -> None:
    """Raise :class:`VerificationError` when ``program`` has findings."""
    findings = verify_program(program)
    if findings:
        rendered = "; ".join(finding.render() for finding in findings[:5])
        more = f" (+{len(findings) - 5} more)" if len(findings) > 5 else ""
        raise VerificationError(
            f"IR verification failed with {len(findings)} finding(s): "
            f"{rendered}{more}",
            findings=tuple(findings),
        )


def debug_verify_enabled() -> bool:
    """Whether compile-time verification is forced on by the environment."""
    return os.environ.get(DEBUG_VERIFY_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )
