"""Basic blocks of the IR."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction, MemoryRef, Terminator


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions ending in a
    terminator."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    terminator: Terminator | None = None

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def memory_refs(self) -> list[MemoryRef]:
        """All memory references performed by the block, in program order."""
        refs: list[MemoryRef] = []
        for instruction in self.instructions:
            refs.extend(instruction.memory_refs())
        if self.terminator is not None:
            refs.extend(self.terminator.memory_refs())
        return refs

    @property
    def instruction_count(self) -> int:
        """Number of instructions including the terminator.

        Used as the unit for the speculation-depth bound, mirroring the
        paper's "number of speculatively executed instructions".
        """
        return len(self.instructions) + (1 if self.terminator is not None else 0)

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        for instruction in self.instructions:
            lines.append(f"  {instruction}")
        if self.terminator is not None:
            lines.append(f"  {self.terminator}")
        return "\n".join(lines)
