"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file only exists
so that ``pip install -e . --no-use-pep517`` works on machines without the
``wheel`` package (e.g. fully offline environments).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.5.0",
    description=(
        "Abstract interpretation under speculative execution (PLDI 2019 "
        "reproduction), served as a system: persistent result store, async "
        "job scheduler, and the `repro` analysis daemon/CLI"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.service.cli:main",
        ],
    },
)
